#include "graph/dual_builders.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dualrad::duals {
namespace {

bool is_power_of_two(NodeId x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

BridgeNetworkLayout bridge_layout(NodeId n) {
  DUALRAD_REQUIRE(n >= 3, "bridge network needs n >= 3");
  BridgeNetworkLayout layout;
  layout.source = 0;
  layout.bridge = 1;
  layout.receiver = n - 1;
  layout.clique_size = n - 1;
  return layout;
}

DualGraph bridge_network(NodeId n) {
  const BridgeNetworkLayout layout = bridge_layout(n);
  Graph g(n);
  for (NodeId u = 0; u < layout.clique_size; ++u) {
    for (NodeId v = u + 1; v < layout.clique_size; ++v) {
      g.add_undirected_edge(u, v);
    }
  }
  g.add_undirected_edge(layout.bridge, layout.receiver);
  Graph gp = gen::clique(n);
  return DualGraph(std::move(g), std::move(gp), layout.source);
}

std::vector<NodeId> theorem12_layers(NodeId n) {
  DUALRAD_REQUIRE(n >= 5 && is_power_of_two(n - 1),
                  "theorem12 network needs n-1 a power of two, n-1 >= 4");
  std::vector<NodeId> layer(static_cast<std::size_t>(n), 0);
  for (NodeId v = 1; v < n; ++v) layer[static_cast<std::size_t>(v)] = (v + 1) / 2;
  return layer;
}

DualGraph theorem12_network(NodeId n) {
  const auto layer = theorem12_layers(n);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const NodeId lu = layer[static_cast<std::size_t>(u)];
      const NodeId lv = layer[static_cast<std::size_t>(v)];
      if (lu == lv || lu + 1 == lv || lv + 1 == lu) g.add_undirected_edge(u, v);
    }
  }
  Graph gp = gen::clique(n);
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph layered_complete_gprime(NodeId num_layers, NodeId width) {
  DUALRAD_REQUIRE(num_layers >= 1 && width >= 1, "bad layered params");
  std::vector<NodeId> sizes(static_cast<std::size_t>(num_layers), width);
  sizes[0] = 1;  // single source layer
  Graph g = gen::complete_layered(sizes);
  Graph gp = gen::clique(g.node_count());
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph gray_zone(const GrayZoneParams& params) {
  DUALRAD_REQUIRE(params.n >= 2, "gray zone needs n >= 2");
  DUALRAD_REQUIRE(params.r_reliable > 0 && params.r_gray >= params.r_reliable,
                  "need 0 < r_reliable <= r_gray");
  StreamRng rng(mix_seed(params.seed, 0x6772617A));
  const auto n = static_cast<std::size_t>(params.n);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const auto dist2 = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b], dy = y[a] - y[b];
    return dx * dx + dy * dy;
  };
  Graph g(params.n);
  Graph gp(params.n);
  const double rr2 = params.r_reliable * params.r_reliable;
  const double rg2 = params.r_gray * params.r_gray;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double d2 = dist2(a, b);
      if (d2 <= rr2) {
        g.add_undirected_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
        gp.add_undirected_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      } else if (d2 <= rg2) {
        gp.add_undirected_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      }
    }
  }
  // Wire stranded nodes into the source component along nearest-neighbor
  // links so G satisfies the model's reachability assumption.
  for (;;) {
    const auto d = graphalg::bfs_distances(g, 0);
    std::size_t best_u = n, best_v = n;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < n; ++u) {
      if (d[u] != kNever) continue;
      for (std::size_t v = 0; v < n; ++v) {
        if (d[v] == kNever) continue;
        if (const double d2 = dist2(u, v); d2 < best) {
          best = d2;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_u == n) break;  // all reachable
    g.add_undirected_edge(static_cast<NodeId>(best_u),
                          static_cast<NodeId>(best_v));
    if (!gp.has_edge(static_cast<NodeId>(best_u), static_cast<NodeId>(best_v))) {
      gp.add_undirected_edge(static_cast<NodeId>(best_u),
                             static_cast<NodeId>(best_v));
    }
  }
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph backbone_plus_unreliable(const BackboneParams& params) {
  DUALRAD_REQUIRE(params.n >= 2, "backbone needs n >= 2");
  Graph g = gen::gnp_connected(params.n, params.p_reliable,
                               mix_seed(params.seed, 0x62616B));
  Graph gp(params.n);
  for (const auto& [u, v] : g.edges()) {
    if (!gp.has_edge(u, v)) gp.add_undirected_edge(u, v);
  }
  StreamRng rng(mix_seed(params.seed, 0x756E72));
  for (NodeId u = 0; u < params.n; ++u) {
    for (NodeId v = u + 1; v < params.n; ++v) {
      if (!gp.has_edge(u, v) && rng.bernoulli(params.p_unreliable)) {
        gp.add_undirected_edge(u, v);
      }
    }
  }
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph strip_unreliable(const DualGraph& net) {
  Graph g = net.g();
  return make_classical(std::move(g), net.source());
}

}  // namespace dualrad::duals
