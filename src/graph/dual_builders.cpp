#include "graph/dual_builders.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dualrad::duals {
namespace {

bool is_power_of_two(NodeId x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

BridgeNetworkLayout bridge_layout(NodeId n) {
  DUALRAD_REQUIRE(n >= 3, "bridge network needs n >= 3");
  BridgeNetworkLayout layout;
  layout.source = 0;
  layout.bridge = 1;
  layout.receiver = n - 1;
  layout.clique_size = n - 1;
  return layout;
}

DualGraph bridge_network(NodeId n) {
  const BridgeNetworkLayout layout = bridge_layout(n);
  Graph g(n);
  for (NodeId u = 0; u < layout.clique_size; ++u) {
    for (NodeId v = u + 1; v < layout.clique_size; ++v) {
      g.add_undirected_edge(u, v);
    }
  }
  g.add_undirected_edge(layout.bridge, layout.receiver);
  Graph gp = gen::clique(n);
  return DualGraph(std::move(g), std::move(gp), layout.source);
}

std::vector<NodeId> theorem12_layers(NodeId n) {
  DUALRAD_REQUIRE(n >= 5 && is_power_of_two(n - 1),
                  "theorem12 network needs n-1 a power of two, n-1 >= 4");
  std::vector<NodeId> layer(static_cast<std::size_t>(n), 0);
  for (NodeId v = 1; v < n; ++v) layer[static_cast<std::size_t>(v)] = (v + 1) / 2;
  return layer;
}

DualGraph theorem12_network(NodeId n) {
  const auto layer = theorem12_layers(n);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const NodeId lu = layer[static_cast<std::size_t>(u)];
      const NodeId lv = layer[static_cast<std::size_t>(v)];
      if (lu == lv || lu + 1 == lv || lv + 1 == lu) g.add_undirected_edge(u, v);
    }
  }
  Graph gp = gen::clique(n);
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph layered_complete_gprime(NodeId num_layers, NodeId width) {
  DUALRAD_REQUIRE(num_layers >= 1 && width >= 1, "bad layered params");
  std::vector<NodeId> sizes(static_cast<std::size_t>(num_layers), width);
  sizes[0] = 1;  // single source layer
  Graph g = gen::complete_layered(sizes);
  Graph gp = gen::clique(g.node_count());
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph gray_zone(const GrayZoneParams& params) {
  DUALRAD_REQUIRE(params.n >= 2, "gray zone needs n >= 2");
  DUALRAD_REQUIRE(params.r_reliable > 0 && params.r_gray >= params.r_reliable,
                  "need 0 < r_reliable <= r_gray");
  StreamRng rng(mix_seed(params.seed, 0x6772617A));
  const auto n = static_cast<std::size_t>(params.n);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const auto dist2 = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b], dy = y[a] - y[b];
    return dx * dx + dy * dy;
  };
  Graph g(params.n);
  Graph gp(params.n);
  const double rr2 = params.r_reliable * params.r_reliable;
  const double rg2 = params.r_gray * params.r_gray;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double d2 = dist2(a, b);
      if (d2 <= rr2) {
        g.add_undirected_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
        gp.add_undirected_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      } else if (d2 <= rg2) {
        gp.add_undirected_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      }
    }
  }
  // Wire stranded nodes into the source component along nearest-neighbor
  // links so G satisfies the model's reachability assumption.
  for (;;) {
    const auto d = graphalg::bfs_distances(g, 0);
    std::size_t best_u = n, best_v = n;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < n; ++u) {
      if (d[u] != kNever) continue;
      for (std::size_t v = 0; v < n; ++v) {
        if (d[v] == kNever) continue;
        if (const double d2 = dist2(u, v); d2 < best) {
          best = d2;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_u == n) break;  // all reachable
    g.add_undirected_edge(static_cast<NodeId>(best_u),
                          static_cast<NodeId>(best_v));
    if (!gp.has_edge(static_cast<NodeId>(best_u), static_cast<NodeId>(best_v))) {
      gp.add_undirected_edge(static_cast<NodeId>(best_u),
                             static_cast<NodeId>(best_v));
    }
  }
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph backbone_plus_unreliable(const BackboneParams& params) {
  DUALRAD_REQUIRE(params.n >= 2, "backbone needs n >= 2");
  Graph g = gen::gnp_connected(params.n, params.p_reliable,
                               mix_seed(params.seed, 0x62616B));
  Graph gp(params.n);
  for (const auto& [u, v] : g.edges()) {
    if (!gp.has_edge(u, v)) gp.add_undirected_edge(u, v);
  }
  StreamRng rng(mix_seed(params.seed, 0x756E72));
  for (NodeId u = 0; u < params.n; ++u) {
    for (NodeId v = u + 1; v < params.n; ++v) {
      if (!gp.has_edge(u, v) && rng.bernoulli(params.p_unreliable)) {
        gp.add_undirected_edge(u, v);
      }
    }
  }
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

DualGraph strip_unreliable(const DualGraph& net) {
  Graph g = net.g();
  return make_classical(std::move(g), net.source());
}

DualGraph layered_sparse(const LayeredSparseParams& params) {
  DUALRAD_REQUIRE(params.layers >= 1 && params.width >= 1,
                  "layered_sparse needs layers >= 1, width >= 1");
  DUALRAD_REQUIRE(params.fwd_degree >= 1, "layered_sparse needs fwd_degree >= 1");
  DUALRAD_REQUIRE(params.unreliable_degree >= 0,
                  "layered_sparse needs unreliable_degree >= 0");
  const NodeId n = 1 + params.layers * params.width;
  StreamRng rng(mix_seed(params.seed, 0x6C737270));
  // Edges stream straight into CSR builders — no Graph, no hash set — so a
  // 10^6-node instance peaks at ~8 bytes per emitted edge. Repeated draws
  // of the same parent (and skip links duplicating either direction)
  // collapse in the builders' sort-dedup freeze, exactly as the historical
  // Graph::add_undirected_edge dedup collapsed them.
  CsrGraphBuilder g(n);
  CsrGraphBuilder gp(n);
  const std::size_t reliable_emitted =
      2 * static_cast<std::size_t>(params.layers) * params.width *
      params.fwd_degree;
  g.reserve(reliable_emitted);
  gp.reserve(reliable_emitted + 2 * static_cast<std::size_t>(params.layers) *
                                    params.width * params.unreliable_degree);
  // layer_begin(i): first node id of layer i; layer 0 is the source alone.
  const auto layer_begin = [&](NodeId i) {
    return i == 0 ? NodeId{0} : 1 + (i - 1) * params.width;
  };
  const auto layer_size = [&](NodeId i) {
    return i == 0 ? NodeId{1} : params.width;
  };
  for (NodeId layer = 1; layer <= params.layers; ++layer) {
    const NodeId prev_begin = layer_begin(layer - 1);
    const NodeId prev_size = layer_size(layer - 1);
    for (NodeId j = 0; j < params.width; ++j) {
      const NodeId v = layer_begin(layer) + j;
      for (NodeId d = 0; d < params.fwd_degree; ++d) {
        const NodeId u = prev_begin + static_cast<NodeId>(rng.below(
                             static_cast<std::uint64_t>(prev_size)));
        g.add_undirected_edge(u, v);
        gp.add_undirected_edge(u, v);
      }
    }
  }
  for (NodeId layer = 2; layer <= params.layers; ++layer) {
    const NodeId skip_begin = layer_begin(layer - 2);
    const NodeId skip_size = layer_size(layer - 2);
    for (NodeId j = 0; j < params.width; ++j) {
      const NodeId v = layer_begin(layer) + j;
      for (NodeId d = 0; d < params.unreliable_degree; ++d) {
        const NodeId u = skip_begin + static_cast<NodeId>(rng.below(
                             static_cast<std::uint64_t>(skip_size)));
        gp.add_undirected_edge(u, v);
      }
    }
  }
  return DualGraph(g.freeze(), gp.freeze(), /*source=*/0);
}

DualGraph gray_zone_grid(const GrayZoneGridParams& params) {
  DUALRAD_REQUIRE(params.n >= 2, "gray_zone_grid needs n >= 2");
  DUALRAD_REQUIRE(params.mean_degree > 0, "mean_degree must be positive");
  DUALRAD_REQUIRE(params.gray_factor >= 1.0, "gray_factor must be >= 1");
  const auto n = static_cast<std::size_t>(params.n);
  const double pi = 3.14159265358979323846;
  const double r_rel =
      std::sqrt(params.mean_degree / (pi * static_cast<double>(params.n)));
  const double r_gray = std::min(params.gray_factor * r_rel, 1.0);

  StreamRng rng(mix_seed(params.seed, 0x67726964));
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const auto dist2 = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b], dy = y[a] - y[b];
    return dx * dx + dy * dy;
  };

  // Spatial hash: cells of side r_gray, so all neighbors of a node live in
  // its 3x3 cell block. Cell occupants are listed in ascending node id.
  const auto cells =
      std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / r_gray));
  const double cell_size = 1.0 / static_cast<double>(cells);
  const auto cell_of = [&](double coord) {
    return std::min(cells - 1,
                    static_cast<std::size_t>(coord / cell_size));
  };
  std::vector<std::vector<NodeId>> grid(cells * cells);
  for (std::size_t i = 0; i < n; ++i) {
    grid[cell_of(y[i]) * cells + cell_of(x[i])].push_back(
        static_cast<NodeId>(i));
  }

  // Edges stream into CSR builders (no Graph, no hash set); reliable
  // connectivity for the stranded-node wiring is tracked in a union-find
  // instead of flooding adjacency lists, since the builders expose none
  // until freeze.
  CsrGraphBuilder g(params.n);
  CsrGraphBuilder gp(params.n);
  std::vector<NodeId> dsu_parent(n);
  for (std::size_t i = 0; i < n; ++i) dsu_parent[i] = static_cast<NodeId>(i);
  const auto find = [&](NodeId v) {
    while (dsu_parent[static_cast<std::size_t>(v)] != v) {
      auto& p = dsu_parent[static_cast<std::size_t>(v)];
      p = dsu_parent[static_cast<std::size_t>(p)];  // path halving
      v = p;
    }
    return v;
  };
  const auto unite = [&](NodeId a, NodeId b) {
    dsu_parent[static_cast<std::size_t>(find(a))] = find(b);
  };
  const double rr2 = r_rel * r_rel;
  const double rg2 = r_gray * r_gray;
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t cx = cell_of(x[a]), cy = cell_of(y[a]);
    for (std::size_t gy = cy == 0 ? 0 : cy - 1;
         gy <= std::min(cells - 1, cy + 1); ++gy) {
      for (std::size_t gx = cx == 0 ? 0 : cx - 1;
           gx <= std::min(cells - 1, cx + 1); ++gx) {
        for (const NodeId bv : grid[gy * cells + gx]) {
          const auto b = static_cast<std::size_t>(bv);
          if (b <= a) continue;  // each pair once, smaller id first
          const double d2 = dist2(a, b);
          if (d2 <= rr2) {
            g.add_undirected_edge(static_cast<NodeId>(a), bv);
            gp.add_undirected_edge(static_cast<NodeId>(a), bv);
            unite(static_cast<NodeId>(a), bv);
          } else if (d2 <= rg2) {
            gp.add_undirected_edge(static_cast<NodeId>(a), bv);
          }
        }
      }
    }
  }

  // Wire stranded nodes into the source component along nearest-neighbor
  // links (expanding ring search over the grid), modeling the link-quality
  // floor like gray_zone. "Covered" = reliably connected to node 0, which
  // the union-find answers directly; wiring a node unions its whole
  // component in, so each component costs one extra edge.
  const auto covered = [&](NodeId w) { return find(w) == find(0); };
  for (std::size_t v = 0; v < n; ++v) {
    if (covered(static_cast<NodeId>(v))) continue;
    // Nearest covered node: scan grid rings outward until the closest
    // possible cell of the next ring — (ring - 1) cells away — is already
    // farther than the best hit, which guarantees the true nearest was
    // seen. Ties break toward the smaller node id (deterministic).
    const std::size_t cx = cell_of(x[v]), cy = cell_of(y[v]);
    NodeId best = kInvalidNode;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t ring = 0; ring < cells; ++ring) {
      if (best != kInvalidNode && ring >= 2) {
        const double ring_min = static_cast<double>(ring - 1) * cell_size;
        if (ring_min * ring_min > best_d2) break;
      }
      const auto visit = [&](std::size_t gx, std::size_t gy) {
        for (const NodeId wv : grid[gy * cells + gx]) {
          if (!covered(wv)) continue;
          const double d2 = dist2(v, static_cast<std::size_t>(wv));
          if (d2 < best_d2 || (d2 == best_d2 && wv < best)) {
            best_d2 = d2;
            best = wv;
          }
        }
      };
      const std::size_t lo_x = cx >= ring ? cx - ring : 0;
      const std::size_t hi_x = std::min(cells - 1, cx + ring);
      const std::size_t lo_y = cy >= ring ? cy - ring : 0;
      const std::size_t hi_y = std::min(cells - 1, cy + ring);
      for (std::size_t gy = lo_y; gy <= hi_y; ++gy) {
        for (std::size_t gx = lo_x; gx <= hi_x; ++gx) {
          // Ring cells only: skip the interior already visited.
          if (ring > 0 && gx != lo_x && gx != hi_x && gy != lo_y &&
              gy != hi_y) {
            continue;
          }
          visit(gx, gy);
        }
      }
    }
    DUALRAD_CHECK(best != kInvalidNode, "no covered node found for wiring");
    g.add_undirected_edge(static_cast<NodeId>(v), best);
    // The wire may duplicate an existing gray edge; the freeze dedups.
    gp.add_undirected_edge(static_cast<NodeId>(v), best);
    unite(static_cast<NodeId>(v), best);
  }
  return DualGraph(g.freeze(), gp.freeze(), /*source=*/0);
}

}  // namespace dualrad::duals
