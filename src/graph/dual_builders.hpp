#pragma once

#include <cstdint>
#include <vector>

#include "graph/dual_graph.hpp"

/// \file dual_builders.hpp
/// Dual graph network families. These include the exact constructions used in
/// the paper's lower-bound proofs (Theorems 2/4 and 12) and "realistic"
/// families (gray-zone geometric networks, reliable backbone plus unreliable
/// extras) used by the upper-bound scaling experiments.

namespace dualrad::duals {

/// Roles of the distinguished nodes in the Theorem 2 bridge network.
struct BridgeNetworkLayout {
  NodeId source = 0;       ///< in the clique
  NodeId bridge = 1;       ///< in the clique; only clique node adjacent to r
  NodeId receiver = 0;     ///< the node outside the clique (set to n-1)
  NodeId clique_size = 0;  ///< n-1
};

/// The 2-broadcastable network of Theorem 2 (and Theorem 4): G is an
/// (n-1)-node clique {0..n-2} containing the source (node 0) and a bridge
/// (node 1), plus a receiver node n-1 attached only to the bridge; G' is the
/// complete graph. Requires n >= 3.
[[nodiscard]] DualGraph bridge_network(NodeId n);
[[nodiscard]] BridgeNetworkLayout bridge_layout(NodeId n);

/// The Theorem 12 lower-bound network: V = {0..n-1}, layers L_0 = {0},
/// L_k = {2k-1, 2k}; G is the complete layered graph over those layers and
/// G' is the complete graph. Requires n-1 a power of two, n-1 >= 4.
[[nodiscard]] DualGraph theorem12_network(NodeId n);

/// Layer index of each node in theorem12_network(n).
[[nodiscard]] std::vector<NodeId> theorem12_layers(NodeId n);

/// Generic undirected layered dual network: G = complete layered graph with
/// `num_layers` layers of `width` nodes (layer 0 is the single source unless
/// width_layer0 overrides); G' = complete graph. A clean testbed for
/// progress-through-layers behavior.
[[nodiscard]] DualGraph layered_complete_gprime(NodeId num_layers, NodeId width);

/// "Gray zone" geometric network (motivated by [24] in the paper): n nodes
/// uniform in the unit square; reliable edges below distance r_reliable,
/// unreliable edges between r_reliable and r_gray. If G is disconnected from
/// the source, each stranded node is wired (reliably) to its nearest node in
/// the covered component, modeling the link-quality floor. Undirected.
struct GrayZoneParams {
  NodeId n = 64;
  double r_reliable = 0.18;
  double r_gray = 0.45;
  std::uint64_t seed = 1;
};
[[nodiscard]] DualGraph gray_zone(const GrayZoneParams& params);

/// Reliable random backbone (spanning tree + G(n,p) extras) with additional
/// unreliable random edges. Undirected.
struct BackboneParams {
  NodeId n = 64;
  double p_reliable = 0.0;    ///< density of extra reliable edges
  double p_unreliable = 0.2;  ///< density of unreliable edges
  std::uint64_t seed = 1;
};
[[nodiscard]] DualGraph backbone_plus_unreliable(const BackboneParams& params);

/// Classical-model counterpart used as baseline workload: G == G' == the
/// reliable part of `net`.
[[nodiscard]] DualGraph strip_unreliable(const DualGraph& net);

/// Sparse random layered dual network for large-n workloads (the scale/*
/// scenarios and bench_engine_scaling). n = 1 + layers * width nodes: a
/// single source in layer 0, then `layers` layers of `width` nodes. Each
/// node of layer i >= 1 draws `fwd_degree` random parents in layer i-1
/// (reliable, undirected); each node of layer i >= 2 additionally draws
/// `unreliable_degree` random contacts in layer i-2 (G'-only, undirected) —
/// long "skip" links that exist but cannot be relied upon. Degrees stay
/// O(fwd_degree + unreliable_degree) regardless of n, and edges stream
/// straight into CsrGraphBuilder (no Graph intermediate, no hash set), so
/// 10^6-node networks fit comfortably in memory, unlike the complete-G'
/// layered family. Adjacency rows are sorted (builder order).
struct LayeredSparseParams {
  NodeId layers = 100;
  NodeId width = 32;
  NodeId fwd_degree = 3;
  NodeId unreliable_degree = 2;
  std::uint64_t seed = 1;
};
[[nodiscard]] DualGraph layered_sparse(const LayeredSparseParams& params);

/// Grid-bucketed gray-zone geometric network: the same model as gray_zone
/// (uniform points; reliable edges below r_reliable, unreliable in the
/// (r_reliable, r_gray] ring; stranded nodes wired to their nearest covered
/// node) but with radii scaled so the expected reliable degree is
/// `mean_degree`, O(n)-expected construction via spatial hashing, and edges
/// streamed into CsrGraphBuilder with union-find connectivity tracking —
/// usable at n = 10^6 where the all-pairs gray_zone builder is not.
struct GrayZoneGridParams {
  NodeId n = 1000;
  /// Expected reliable degree; r_reliable = sqrt(mean_degree / (pi n)).
  double mean_degree = 12.0;
  /// r_gray = gray_factor * r_reliable.
  double gray_factor = 1.5;
  std::uint64_t seed = 1;
};
[[nodiscard]] DualGraph gray_zone_grid(const GrayZoneGridParams& params);

}  // namespace dualrad::duals
