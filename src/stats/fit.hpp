#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

/// \file fit.hpp
/// Growth-shape fitting for the scaling experiments: given (n, rounds)
/// points, fit rounds ~ c * g(n) for the candidate shapes the paper's bounds
/// predict and report the best-fitting shape by R^2. This is how the benches
/// check "who wins, by roughly what factor, where the shape lies" without
/// matching absolute constants.

namespace dualrad::stats {

struct ShapeFit {
  std::string shape;   ///< e.g. "n^1.5 sqrt(log n)"
  double scale = 0.0;  ///< fitted c
  double r2 = 0.0;     ///< coefficient of determination
  /// max/min of rounds_i / g(n_i): flatness of the normalized curve
  /// (1 = perfectly proportional).
  double ratio_spread = 0.0;
};

/// The candidate shapes used throughout the benches.
/// "n", "n log n", "n log^2 n", "n^1.5", "n^1.5 sqrt(log n)", "n^2".
[[nodiscard]] std::vector<std::string> candidate_shapes();

/// Evaluate a named shape at n.
[[nodiscard]] double shape_value(const std::string& shape, double n);

/// Least-squares fit of y ~ c * g(n) for one shape.
[[nodiscard]] ShapeFit fit_shape(const std::string& shape,
                                 const std::vector<double>& n,
                                 const std::vector<double>& y);

/// Fit all candidate shapes, best (highest R^2) first.
[[nodiscard]] std::vector<ShapeFit> fit_all_shapes(
    const std::vector<double>& n, const std::vector<double>& y);

}  // namespace dualrad::stats
