#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>

namespace dualrad::stats {

std::vector<std::string> candidate_shapes() {
  return {"n", "n log n", "n log^2 n", "n^1.5", "n^1.5 sqrt(log n)", "n^2"};
}

double shape_value(const std::string& shape, double n) {
  DUALRAD_REQUIRE(n >= 2, "shape_value needs n >= 2");
  const double ln = std::log2(n);
  if (shape == "n") return n;
  if (shape == "n log n") return n * ln;
  if (shape == "n log^2 n") return n * ln * ln;
  if (shape == "n^1.5") return n * std::sqrt(n);
  if (shape == "n^1.5 sqrt(log n)") return n * std::sqrt(n * ln);
  if (shape == "n^2") return n * n;
  throw std::invalid_argument("unknown shape: " + shape);
}

ShapeFit fit_shape(const std::string& shape, const std::vector<double>& n,
                   const std::vector<double>& y) {
  DUALRAD_REQUIRE(n.size() == y.size() && !n.empty(),
                  "fit needs matching non-empty samples");
  ShapeFit fit;
  fit.shape = shape;
  double sgy = 0.0, sgg = 0.0, sy = 0.0;
  double ratio_min = 0.0, ratio_max = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double g = shape_value(shape, n[i]);
    sgy += g * y[i];
    sgg += g * g;
    sy += y[i];
    const double ratio = y[i] / g;
    if (first) {
      ratio_min = ratio_max = ratio;
      first = false;
    } else {
      ratio_min = std::min(ratio_min, ratio);
      ratio_max = std::max(ratio_max, ratio);
    }
  }
  fit.scale = sgg > 0 ? sgy / sgg : 0.0;
  const double mean_y = sy / static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double pred = fit.scale * shape_value(shape, n[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.ratio_spread = ratio_min > 0 ? ratio_max / ratio_min : 0.0;
  return fit;
}

std::vector<ShapeFit> fit_all_shapes(const std::vector<double>& n,
                                     const std::vector<double>& y) {
  std::vector<ShapeFit> fits;
  for (const auto& shape : candidate_shapes()) {
    fits.push_back(fit_shape(shape, n, y));
  }
  std::sort(fits.begin(), fits.end(),
            [](const ShapeFit& a, const ShapeFit& b) { return a.r2 > b.r2; });
  return fits;
}

}  // namespace dualrad::stats
