#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Fixed-width table rendering for bench output (paper-style rows).

namespace dualrad::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns and a header separator.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Helpers for formatting numbers.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string num(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dualrad::stats
