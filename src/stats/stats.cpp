#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dualrad::stats {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  s.median = samples.size() % 2 == 1
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  // Nearest-rank percentile: rank ceil(0.9 n), 1-based.
  const auto p90_rank = static_cast<std::size_t>(
      std::ceil(0.9 * static_cast<double>(samples.size())));
  s.p90 = samples[std::max<std::size_t>(p90_rank, 1) - 1];
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

Summary summarize_rounds(const std::vector<Round>& samples) {
  std::vector<double> d;
  d.reserve(samples.size());
  for (Round r : samples) d.push_back(static_cast<double>(r));
  return summarize(std::move(d));
}

double wilson_half_width(std::size_t successes, std::size_t trials) {
  if (trials == 0) return 1.0;
  const double z = 1.96;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  return z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) /
         (1.0 + z * z / n);
}

}  // namespace dualrad::stats
