#include "stats/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/types.hpp"

namespace dualrad::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DUALRAD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DUALRAD_REQUIRE(cells.size() == headers_.size(),
                  "row arity does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

}  // namespace dualrad::stats
