#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

/// \file stats.hpp
/// Summary statistics over repeated trials (round counts, probabilities).

namespace dualrad::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Middle element for odd counts; the average of the two middle elements
  /// for even counts.
  double median = 0.0;
  /// Nearest-rank 90th percentile: the element of 1-based rank ceil(0.9 n).
  double p90 = 0.0;
};

[[nodiscard]] Summary summarize(std::vector<double> samples);
[[nodiscard]] Summary summarize_rounds(const std::vector<Round>& samples);

/// Wilson score interval half-width at ~95% for a Bernoulli estimate.
[[nodiscard]] double wilson_half_width(std::size_t successes,
                                       std::size_t trials);

}  // namespace dualrad::stats
