#pragma once

#include "core/process.hpp"

/// \file round_robin_bcast.hpp
/// Deterministic round-robin broadcast: a node holding the message sends in
/// exactly the rounds congruent to its id modulo n. This is the strategy the
/// paper's Section 4 notes match the Omega(n) bound of Theorem 2: it
/// completes in O(n) rounds on (directed or undirected) dual graphs of
/// constant diameter and in O(n * depth) rounds in general — in *any* dual
/// graph, because each covered node is isolated once every n rounds
/// regardless of the adversary. It is also the O(n min{n, Delta log n})
/// dynamic-fault baseline of [11] in its Delta = n form.

namespace dualrad {

[[nodiscard]] ProcessFactory make_round_robin_factory(NodeId n);

}  // namespace dualrad
