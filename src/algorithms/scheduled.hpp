#pragma once

#include <vector>

#include "core/process.hpp"

/// \file scheduled.hpp
/// TDMA-style scheduled broadcast: a fixed single-sender-per-round schedule
/// over process ids, repeated cyclically. With one sender per round no
/// collisions can occur, so the schedule's coverage is adversary-proof —
/// this is the "oracle" side of k-broadcastability (Section 3) turned into
/// an executable algorithm, and the payoff of topology learning in the
/// repeated-broadcast experiments (the paper's future-work direction).

namespace dualrad {

/// slots[r] is the process id transmitting in rounds r+1, r+1+P, ... where
/// P = slots.size(); a process transmits only once it holds the token.
[[nodiscard]] ProcessFactory make_scheduled_factory(
    NodeId n, std::vector<ProcessId> slots);

}  // namespace dualrad
