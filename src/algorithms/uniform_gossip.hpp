#pragma once

#include "core/process.hpp"

/// \file uniform_gossip.hpp
/// Uniform gossip: an informed node transmits with a fixed probability p
/// every round. With p ~ 1/n this is the natural randomized strategy for
/// dense constant-diameter networks (each round the chance that exactly one
/// informed node sends is ~1/e), and it is the cleanest algorithm to plot
/// against the Theorem 4 bound: its per-round solo-isolation probability is
/// about 1/(e n), so P[success within k] grows ~k/(e n) — strictly below the
/// theorem's k/(n-2) ceiling, tracing a non-degenerate curve under it.

namespace dualrad {

struct UniformGossipOptions {
  /// Transmission probability; 0 derives 1/(n-1).
  double p = 0.0;
};

[[nodiscard]] double uniform_gossip_p(NodeId n,
                                      const UniformGossipOptions& options = {});

[[nodiscard]] ProcessFactory make_uniform_gossip_factory(
    NodeId n, const UniformGossipOptions& options = {});

}  // namespace dualrad
