#include "algorithms/decay.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "algorithms/broadcast_algorithm.hpp"
#include "core/rng.hpp"

namespace dualrad {

Round decay_phase_length(NodeId n, const DecayOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "decay needs n >= 2");
  if (options.phase_length > 0) return options.phase_length;
  return static_cast<Round>(
             std::ceil(std::log2(static_cast<double>(n)))) + 1;
}

namespace {

/// Exactly 2^{-offset} (the same double std::ldexp(1.0, -offset) yields)
/// without the libm call — this sits on the per-round hot path of every
/// informed node.
[[nodiscard]] inline double pow2_neg(int offset) {
  if (offset > 1022) return std::ldexp(1.0, -offset);  // denormal range
  return std::bit_cast<double>((1023ULL - static_cast<unsigned>(offset))
                               << 52);
}

class DecayProcess final : public TokenProcess {
 public:
  DecayProcess(ProcessId id, Round phase, Round active_phases,
               Round rebroadcast_period, std::uint64_t seed)
      : TokenProcess(id),
        phase_(phase),
        active_phases_(active_phases),
        rebroadcast_period_(rebroadcast_period),
        rng_(seed) {}
  DecayProcess(const DecayProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!on_air(round)) return Action::silent();
    const auto offset = static_cast<int>((round - 1) % phase_);
    if (!rng_.bernoulli(pow2_neg(offset), round)) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  void on_receive(Round round, const Reception& reception) override {
    const Round before = token_round();
    TokenProcess::on_receive(round, reception);
    if (token_round() != before) memo_next_ = kUnplanned;
  }

  /// Counter-based coins make the send schedule a pure function of the
  /// round, so the process can tell the engine its next transmission round
  /// exactly; quiet duty-cycle stretches are skipped arithmetically. The
  /// answer is memoized: the engine re-asks after every reception, but it
  /// only changes when the token state does (see on_receive).
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token()) return kNever;
    from = std::max(from, token_round() + 1);
    if (memo_next_ != kUnplanned && from >= memo_from_ &&
        (memo_next_ == kNever || from <= memo_next_)) {
      return memo_next_;
    }
    memo_from_ = from;
    memo_next_ = scan_for_send(from);
    return memo_next_;
  }

  /// State is has_token()/token_round() only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<DecayProcess>(*this);
  }

 private:
  static constexpr Round kUnplanned = -2;

  /// Phase index since token receipt: 0 during the first phase-length
  /// stretch after the token arrived. Duty windows are counted relative to
  /// the token round, so nodes beacon staggered, while transmission
  /// probabilities stay globally aligned ((round - 1) % phase).
  [[nodiscard]] Round phase_index(Round round) const {
    return (round - token_round() - 1) / phase_;
  }

  /// True iff the decay schedule is live at `round`: always, in the
  /// historical unbounded mode; during the initial window, or every
  /// rebroadcast_period-th phase when maintenance is on, otherwise.
  [[nodiscard]] bool on_air(Round round) const {
    if (!has_token() || round <= token_round()) return false;
    if (active_phases_ <= 0) return true;
    const Round index = phase_index(round);
    if (index < active_phases_) return true;
    return rebroadcast_period_ > 0 && index % rebroadcast_period_ == 0;
  }

  /// First live round at or after `round`; kNever if the schedule is
  /// permanently over.
  [[nodiscard]] Round next_on_air(Round round) const {
    if (on_air(round)) return round;
    if (rebroadcast_period_ <= 0) return kNever;  // window over, no beacons
    const Round next_index =
        ((phase_index(round) + rebroadcast_period_ - 1) /
         rebroadcast_period_) *
        rebroadcast_period_;
    return token_round() + next_index * phase_ + 1;
  }

  /// Every live stretch spans a full phase and therefore contains an
  /// offset-0 round (p = 1), so the scan terminates quickly.
  [[nodiscard]] Round scan_for_send(Round from) const {
    for (Round r = next_on_air(from); r != kNever; r = next_on_air(r + 1)) {
      const auto offset = static_cast<int>((r - 1) % phase_);
      if (rng_.bernoulli(pow2_neg(offset), r)) return r;
    }
    return kNever;
  }

  Round phase_;
  Round active_phases_;
  Round rebroadcast_period_;
  CounterRng rng_;
  /// Memoized scan_for_send result: the next send >= memo_from_, valid
  /// while the token state is unchanged (on_receive invalidates).
  mutable Round memo_from_ = 0;
  mutable Round memo_next_ = kUnplanned;
};

}  // namespace

ProcessFactory make_decay_factory(NodeId n, const DecayOptions& options) {
  const Round phase = decay_phase_length(n, options);
  const Round active_phases = options.active_phases;
  const Round rebroadcast_period = options.rebroadcast_period;
  return [phase, active_phases, rebroadcast_period, n](
             ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<DecayProcess>(id, phase, active_phases,
                                          rebroadcast_period, seed);
  };
}

}  // namespace dualrad
