#include "algorithms/decay.hpp"

#include <cmath>

#include "algorithms/broadcast_algorithm.hpp"
#include "core/rng.hpp"

namespace dualrad {

Round decay_phase_length(NodeId n, const DecayOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "decay needs n >= 2");
  if (options.phase_length > 0) return options.phase_length;
  return static_cast<Round>(
             std::ceil(std::log2(static_cast<double>(n)))) + 1;
}

namespace {

class DecayProcess final : public TokenProcess {
 public:
  DecayProcess(ProcessId id, Round phase, std::uint64_t seed)
      : TokenProcess(id), phase_(phase), rng_(seed) {}
  DecayProcess(const DecayProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    const auto offset = static_cast<int>((round - 1) % phase_);
    const double p = std::ldexp(1.0, -offset);  // 2^{-offset}
    if (!rng_.bernoulli(p, round)) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<DecayProcess>(*this);
  }

 private:
  Round phase_;
  CounterRng rng_;
};

}  // namespace

ProcessFactory make_decay_factory(NodeId n, const DecayOptions& options) {
  const Round phase = decay_phase_length(n, options);
  return [phase, n](ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<DecayProcess>(id, phase, seed);
  };
}

}  // namespace dualrad
