#pragma once

#include "core/process.hpp"

/// \file decay.hpp
/// The classical randomized baseline: Bar-Yehuda-Goldreich-Itai style Decay.
///
/// Rounds are grouped into phases of length ceil(log2 n) + 1; in offset j of
/// each phase an informed node transmits with probability 2^{-j}. In the
/// classical (reliable, G == G') model this completes in
/// O((D + log n) log n) rounds w.h.p. — the right-shape stand-in for the
/// optimal O(D log(n/D) + log^2 n) algorithm of [12] cited in Table 2. In
/// dual graphs it carries no guarantee (the adversary can starve it), which
/// is exactly the contrast Table 2 draws.

namespace dualrad {

struct DecayOptions {
  /// Phase length; 0 derives ceil(log2 n) + 1.
  Round phase_length = 0;
};

[[nodiscard]] Round decay_phase_length(NodeId n, const DecayOptions& options = {});

[[nodiscard]] ProcessFactory make_decay_factory(NodeId n,
                                                const DecayOptions& options = {});

}  // namespace dualrad
