#pragma once

#include "core/process.hpp"

/// \file decay.hpp
/// The classical randomized baseline: Bar-Yehuda-Goldreich-Itai style Decay.
///
/// Rounds are grouped into phases of length ceil(log2 n) + 1; in offset j of
/// each phase an informed node transmits with probability 2^{-j}. In the
/// classical (reliable, G == G') model this completes in
/// O((D + log n) log n) rounds w.h.p. — the right-shape stand-in for the
/// optimal O(D log(n/D) + log^2 n) algorithm of [12] cited in Table 2. In
/// dual graphs it carries no guarantee (the adversary can starve it), which
/// is exactly the contrast Table 2 draws.

namespace dualrad {

struct DecayOptions {
  /// Phase length; 0 derives ceil(log2 n) + 1.
  Round phase_length = 0;
  /// Number of phases an informed node keeps transmitting after it first
  /// receives the token, as in BGI's bounded per-message decay windows;
  /// 0 means it transmits forever (the repo's historical behavior). A
  /// bounded window makes steady-state rounds sparse — only the coverage
  /// frontier is on the air — which is both the realistic protocol shape
  /// and the regime the sparse round engine (core/simulator.cpp) is built
  /// for; the scale/* scenarios use it.
  Round active_phases = 0;
  /// Duty-cycled maintenance (only meaningful with active_phases > 0):
  /// after the initial window, the node re-enters the decay schedule for
  /// one phase out of every `rebroadcast_period` phases (counted from its
  /// token receipt, so nodes' duty windows are staggered). This is the
  /// anti-entropy beacon that keeps a bounded window from stranding
  /// late pockets: coverage completes with probability 1 while the
  /// steady-state sender fraction drops by the duty factor. 0 disables
  /// maintenance (the node goes permanently quiet when its window ends).
  Round rebroadcast_period = 0;
};

[[nodiscard]] Round decay_phase_length(NodeId n, const DecayOptions& options = {});

[[nodiscard]] ProcessFactory make_decay_factory(NodeId n,
                                                const DecayOptions& options = {});

}  // namespace dualrad
