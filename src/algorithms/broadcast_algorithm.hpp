#pragma once

#include <optional>

#include "core/process.hpp"

/// \file broadcast_algorithm.hpp
/// Shared machinery for broadcast processes.
///
/// Every algorithm in this library is a function of (id, n, the round the
/// process first received the broadcast token, the current round, private
/// randomness). TokenProcess tracks activation and token state so concrete
/// algorithms only implement the (pure) sending schedule.

namespace dualrad {

/// Base for broadcast processes: tracks when the process woke up and when it
/// first received the broadcast token. `next_action` remains pure in derived
/// classes because all evolving state lives here and changes only in
/// on_activate / on_receive.
class TokenProcess : public Process {
 public:
  void on_activate(Round round, const std::optional<Message>& initial) final {
    DUALRAD_CHECK(activation_round_ == kNever, "double activation");
    activation_round_ = round;
    if (initial.has_value() && initial->token) token_round_ = round;
  }

  void on_receive(Round round, const Reception& reception) override {
    if (reception.has_token() && token_round_ == kNever) token_round_ = round;
  }

 protected:
  using Process::Process;
  TokenProcess(const TokenProcess&) = default;

  /// Round at which the process was activated; kNever before activation.
  [[nodiscard]] Round activation_round() const { return activation_round_; }
  /// Round at whose end the token first arrived (0 for the source);
  /// kNever if the process does not hold the token yet.
  [[nodiscard]] Round token_round() const { return token_round_; }
  [[nodiscard]] bool has_token() const { return token_round_ != kNever; }

 private:
  Round activation_round_ = kNever;
  Round token_round_ = kNever;
};

}  // namespace dualrad
