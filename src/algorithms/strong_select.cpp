#include "algorithms/strong_select.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "algorithms/broadcast_algorithm.hpp"
#include "selectors/round_robin_family.hpp"

namespace dualrad {
namespace {

/// floor(log2(x)) for x >= 1.
int ilog2(Round x) {
  DUALRAD_CHECK(x >= 1, "ilog2 domain");
  return 63 - std::countl_zero(static_cast<std::uint64_t>(x));
}

}  // namespace

std::shared_ptr<const StrongSelectSchedule> StrongSelectSchedule::make(
    NodeId n, const SsfProvider& provider) {
  DUALRAD_REQUIRE(n >= 2, "strong select needs n >= 2");
  auto schedule = std::shared_ptr<StrongSelectSchedule>(
      new StrongSelectSchedule());
  schedule->n_ = n;
  // s_max = log2(sqrt(n / log n)), at least 1. The paper assumes
  // sqrt(n / log n) is a power of two; we take the floor for general n.
  const double nn = static_cast<double>(n);
  const double target = std::sqrt(nn / std::max(1.0, std::log2(nn)));
  schedule->s_max_ = std::max(1, static_cast<int>(std::floor(std::log2(target))));
  schedule->epoch_len_ = (Round{1} << schedule->s_max_) - 1;
  for (int s = 1; s < schedule->s_max_; ++s) {
    const auto k = static_cast<NodeId>(
        std::min<Round>(Round{1} << s, static_cast<Round>(n)));
    schedule->families_.push_back(provider(n, k));
    DUALRAD_CHECK(schedule->families_.back().universe() == n,
                  "provider returned family over wrong universe");
    DUALRAD_CHECK(schedule->families_.back().size() >= 1,
                  "provider returned empty family");
  }
  // F_{s_max} is the round-robin sequence, an (n,n)-SSF (Section 5).
  schedule->families_.push_back(round_robin_family(n));
  return schedule;
}

const SsfFamily& StrongSelectSchedule::family(int s) const {
  DUALRAD_REQUIRE(s >= 1 && s <= s_max_, "family index out of range");
  return families_[static_cast<std::size_t>(s - 1)];
}

Round StrongSelectSchedule::ell(int s) const {
  return static_cast<Round>(family(s).size());
}

Round StrongSelectSchedule::iteration_rounds(int s) const {
  // ell_s sets, 2^{s-1} per epoch, epoch_len_ rounds per epoch. An iteration
  // spans ceil(ell_s / 2^{s-1}) epochs of slots; expressed in rounds from a
  // slot-aligned start it is at most that many epochs.
  const Round per_epoch = Round{1} << (s - 1);
  const Round epochs = (ell(s) + per_epoch - 1) / per_epoch;
  return epochs * epoch_len_;
}

StrongSelectSchedule::Slot StrongSelectSchedule::slot_of_round(Round r) const {
  DUALRAD_REQUIRE(r >= 1, "rounds are 1-based");
  const Round epoch = (r - 1) / epoch_len_;          // 0-based
  const Round pos = (r - 1) % epoch_len_ + 1;        // in [1, epoch_len]
  const int s = ilog2(pos) + 1;                      // family for this round
  const Round within = pos - (Round{1} << (s - 1));  // in [0, 2^{s-1})
  return Slot{s, epoch * (Round{1} << (s - 1)) + within};
}

Round StrongSelectSchedule::slots_before(Round t, int s) const {
  DUALRAD_REQUIRE(t >= 0, "t must be non-negative");
  DUALRAD_REQUIRE(s >= 1 && s <= s_max_, "family index out of range");
  const Round full_epochs = t / epoch_len_;
  const Round rem = t % epoch_len_;  // rounds 1..rem of the partial epoch
  const Round lo = Round{1} << (s - 1);
  const Round hi = (Round{1} << s) - 1;  // family-s rounds are [lo, hi]
  const Round partial = std::max<Round>(0, std::min(rem, hi) - lo + 1);
  return full_epochs * lo + partial;
}

Round StrongSelectSchedule::participation_start(Round token_round,
                                                int s) const {
  const Round next = slots_before(token_round, s);
  const Round l = ell(s);
  return ((next + l - 1) / l) * l;
}

Round StrongSelectSchedule::next_family_send(int s, ProcessId id,
                                             Round token_round, bool forever,
                                             Round from) const {
  DUALRAD_REQUIRE(from >= 1, "rounds are 1-based");
  const std::vector<std::uint32_t>& mine = family(s).sets_containing(id);
  if (mine.empty()) return kNever;
  const Round l = ell(s);
  const Round start = participation_start(token_round, s);
  // slots_before(from - 1, s) is the 0-based index of the first family-s
  // slot at a round >= from; participation clamps it to the window start.
  Round j = std::max(slots_before(from - 1, s), start);
  // Smallest j' >= j whose set (j' mod l) contains id, via the family's
  // sorted membership index — wrap to the next cycle if needed.
  const Round offset = j % l;
  const auto it = std::lower_bound(mine.begin(), mine.end(),
                                   static_cast<std::uint32_t>(offset));
  const Round target = it != mine.end()
                           ? j - offset + static_cast<Round>(*it)
                           : j - offset + l + static_cast<Round>(mine.front());
  if (!forever && target >= start + l) return kNever;  // window exhausted
  // Map the slot index back to its round: slot j of family s lives in epoch
  // j / 2^{s-1} at in-epoch position 2^{s-1} + (j mod 2^{s-1}).
  const Round per_epoch = Round{1} << (s - 1);
  return (target / per_epoch) * epoch_len_ + per_epoch + target % per_epoch;
}

Round StrongSelectSchedule::done_round_bound(Round token_round) const {
  Round done = token_round;
  for (int s = 1; s <= s_max_; ++s) {
    // Participation ends by: wait for alignment (< one iteration) plus one
    // full iteration, measured in rounds.
    done = std::max(done, token_round + 2 * iteration_rounds(s) + epoch_len_);
  }
  return done;
}

namespace {

class StrongSelectProcess final : public TokenProcess {
 public:
  StrongSelectProcess(ProcessId id,
                      std::shared_ptr<const StrongSelectSchedule> schedule,
                      bool participate_forever)
      : TokenProcess(id),
        schedule_(std::move(schedule)),
        forever_(participate_forever) {}

  StrongSelectProcess(const StrongSelectProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    const auto slot = schedule_->slot_of_round(round);
    const Round start = schedule_->participation_start(token_round(), slot.s);
    if (slot.index < start) return Action::silent();
    if (!forever_ && slot.index >= start + schedule_->ell(slot.s)) {
      return Action::silent();
    }
    const auto set_index =
        static_cast<std::size_t>(slot.index % schedule_->ell(slot.s));
    if (!schedule_->family(slot.s).contains(set_index, id())) {
      return Action::silent();
    }
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  /// Exact hint: the minimum over families of the closed-form epoch walk
  /// (next_family_send). No coin, no per-round scan — the whole schedule is
  /// a pure function of (id, token round), so the engine's calendar can
  /// jump straight to the next slot whose SSF set contains this id.
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token()) return kNever;
    from = std::max(from, token_round() + 1);
    Round best = kNever;
    for (int s = 1; s <= schedule_->s_max(); ++s) {
      const Round r =
          schedule_->next_family_send(s, id(), token_round(), forever_, from);
      if (r != kNever && (best == kNever || r < best)) best = r;
    }
    return best;
  }

  /// State is the token round only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<StrongSelectProcess>(*this);
  }

 private:
  std::shared_ptr<const StrongSelectSchedule> schedule_;
  bool forever_;
};

}  // namespace

std::shared_ptr<const StrongSelectSchedule> make_strong_select_schedule(
    NodeId n, const StrongSelectOptions& options) {
  return StrongSelectSchedule::make(n, options.provider);
}

ProcessFactory make_strong_select_factory(NodeId n,
                                          const StrongSelectOptions& options) {
  auto schedule = make_strong_select_schedule(n, options);
  const bool forever = options.participate_forever;
  return [schedule, forever, n](ProcessId id, NodeId n_arg,
                                std::uint64_t /*seed*/) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<StrongSelectProcess>(id, schedule, forever);
  };
}

}  // namespace dualrad
