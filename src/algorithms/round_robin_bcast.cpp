#include "algorithms/round_robin_bcast.hpp"

#include <algorithm>

#include "algorithms/broadcast_algorithm.hpp"

namespace dualrad {
namespace {

class RoundRobinProcess final : public TokenProcess {
 public:
  RoundRobinProcess(ProcessId id, NodeId n) : TokenProcess(id), n_(n) {}
  RoundRobinProcess(const RoundRobinProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    if (round % n_ != id() % n_) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  /// The schedule is closed-form — the next round >= `from` congruent to
  /// id (mod n) once the token is held — so the sparse engine's calendar
  /// elides the n - 1 silent rounds of every cycle exactly.
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token()) return kNever;
    from = std::max(from, token_round() + 1);
    Round delta = (id() % n_) - (from % n_);
    if (delta < 0) delta += n_;
    return from + delta;
  }

  /// State is the token round only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<RoundRobinProcess>(*this);
  }

 private:
  NodeId n_;
};

}  // namespace

ProcessFactory make_round_robin_factory(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "round robin needs n >= 1");
  return [n](ProcessId id, NodeId n_arg, std::uint64_t /*seed*/) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<RoundRobinProcess>(id, n);
  };
}

}  // namespace dualrad
