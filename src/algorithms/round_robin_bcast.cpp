#include "algorithms/round_robin_bcast.hpp"

#include "algorithms/broadcast_algorithm.hpp"

namespace dualrad {
namespace {

class RoundRobinProcess final : public TokenProcess {
 public:
  RoundRobinProcess(ProcessId id, NodeId n) : TokenProcess(id), n_(n) {}
  RoundRobinProcess(const RoundRobinProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    if (round % n_ != id() % n_) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<RoundRobinProcess>(*this);
  }

 private:
  NodeId n_;
};

}  // namespace

ProcessFactory make_round_robin_factory(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "round robin needs n >= 1");
  return [n](ProcessId id, NodeId n_arg, std::uint64_t /*seed*/) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<RoundRobinProcess>(id, n);
  };
}

}  // namespace dualrad
