#include "algorithms/harmonic.hpp"

#include <cmath>

#include "algorithms/broadcast_algorithm.hpp"
#include "core/rng.hpp"

namespace dualrad {

Round harmonic_T(NodeId n, const HarmonicOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "harmonic broadcast needs n >= 2");
  if (options.T > 0) return options.T;
  DUALRAD_REQUIRE(options.eps > 0 && options.constant > 0,
                  "eps and constant must be positive");
  const double t = options.constant *
                   std::log(static_cast<double>(n) / options.eps);
  return std::max<Round>(1, static_cast<Round>(std::ceil(t)));
}

double harmonic_probability(Round t, Round token_round, Round T) {
  if (token_round == kNever || t <= token_round) return 0.0;
  const Round step = (t - token_round - 1) / T;
  return 1.0 / static_cast<double>(1 + step);
}

Round harmonic_round_bound(NodeId n, Round T) {
  double h = 0.0;
  // lint: fp-ok (serial loop in fixed 1..n order, never sharded)
  for (NodeId i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return static_cast<Round>(
      std::ceil(2.0 * static_cast<double>(n) * static_cast<double>(T) * h));
}

namespace {

class HarmonicProcess final : public TokenProcess {
 public:
  HarmonicProcess(ProcessId id, Round T, std::uint64_t seed)
      : TokenProcess(id), T_(T), rng_(seed) {}

  HarmonicProcess(const HarmonicProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    const double p = harmonic_probability(round, token_round(), T_);
    if (p <= 0.0 || !rng_.bernoulli(p, round)) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  /// Counter-based coins make the schedule a pure function of the round
  /// once the token round is fixed, so the exact next transmission round is
  /// computable by scanning the same coins the per-round poll would have
  /// drawn — expected O(1/p) draws, i.e. no more than polling, minus the
  /// engine overhead. Memoized: the token round is set at most once
  /// (TokenProcess), after which the schedule never changes, so a computed
  /// answer stays valid for every `from` up to it.
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token()) return kNever;
    from = std::max(from, token_round() + 1);
    if (memo_next_ != kUnplanned && from >= memo_from_ && from <= memo_next_) {
      return memo_next_;
    }
    Round r = from;
    while (!rng_.bernoulli(harmonic_probability(r, token_round(), T_), r)) {
      ++r;
    }
    memo_from_ = from;
    memo_next_ = r;
    return r;
  }

  /// State is the token round only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<HarmonicProcess>(*this);
  }

 private:
  static constexpr Round kUnplanned = -2;

  Round T_;
  CounterRng rng_;
  /// Next send >= memo_from_; valid while the token state is unchanged
  /// (which, after acquisition, is forever).
  mutable Round memo_from_ = 0;
  mutable Round memo_next_ = kUnplanned;
};

}  // namespace

ProcessFactory make_harmonic_factory(NodeId n, const HarmonicOptions& options) {
  const Round T = harmonic_T(n, options);
  return [T, n](ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<HarmonicProcess>(id, T, seed);
  };
}

}  // namespace dualrad
