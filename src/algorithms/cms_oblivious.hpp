#pragma once

#include "core/process.hpp"
#include "selectors/ssf.hpp"

/// \file cms_oblivious.hpp
/// The dynamic-fault oblivious baseline of Clementi, Monti, Silvestri [11],
/// discussed in Section 2.2: informed nodes cycle forever through a fixed
/// (n, min(n, Delta+1))-strongly-selective family, where Delta is a known
/// upper bound on the in-degree of G'.
///
/// Rationale: an uncovered node v has at most Delta informed G'-in-neighbors
/// whose transmissions can reach (or jam) it; once the informed set is
/// stable for a full iteration, the family isolates the reliable neighbor
/// that must deliver to v. With the paper's selective families this costs
/// O(n min{n, Delta log n}) rounds; built on our SSFs the guarantee is
/// O(n min{n, Delta^2 log^2 n}) — same regime, weaker polynomial, which is
/// exactly the trade Section 2.2 describes: it beats Strong Select when
/// Delta is small but requires knowing Delta, while Strong Select needs no
/// topology knowledge.

namespace dualrad {

struct CmsObliviousOptions {
  /// Known upper bound on the in-degree of G'. Mandatory knowledge for this
  /// algorithm (Section 2.2); use net.g_prime().max_in_degree().
  NodeId delta = 0;
  SsfProvider provider = nullptr;  ///< default: Kautz-Singleton
};

[[nodiscard]] ProcessFactory make_cms_oblivious_factory(
    NodeId n, const CmsObliviousOptions& options);

}  // namespace dualrad
