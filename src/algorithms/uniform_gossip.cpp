#include "algorithms/uniform_gossip.hpp"

#include "algorithms/broadcast_algorithm.hpp"
#include "core/rng.hpp"

namespace dualrad {

double uniform_gossip_p(NodeId n, const UniformGossipOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "uniform gossip needs n >= 2");
  if (options.p > 0) {
    DUALRAD_REQUIRE(options.p <= 1.0, "p must be a probability");
    return options.p;
  }
  return 1.0 / static_cast<double>(n - 1);
}

namespace {

class UniformGossipProcess final : public TokenProcess {
 public:
  UniformGossipProcess(ProcessId id, double p, std::uint64_t seed)
      : TokenProcess(id), p_(p), rng_(seed) {}
  UniformGossipProcess(const UniformGossipProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    if (!rng_.bernoulli(p_, round)) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<UniformGossipProcess>(*this);
  }

 private:
  double p_;
  CounterRng rng_;
};

}  // namespace

ProcessFactory make_uniform_gossip_factory(NodeId n,
                                           const UniformGossipOptions& options) {
  const double p = uniform_gossip_p(n, options);
  return [p, n](ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<UniformGossipProcess>(id, p, seed);
  };
}

}  // namespace dualrad
