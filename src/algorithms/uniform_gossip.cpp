#include "algorithms/uniform_gossip.hpp"

#include <algorithm>

#include "algorithms/broadcast_algorithm.hpp"
#include "core/rng.hpp"

namespace dualrad {

double uniform_gossip_p(NodeId n, const UniformGossipOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "uniform gossip needs n >= 2");
  if (options.p > 0) {
    DUALRAD_REQUIRE(options.p <= 1.0, "p must be a probability");
    return options.p;
  }
  return 1.0 / static_cast<double>(n - 1);
}

namespace {

class UniformGossipProcess final : public TokenProcess {
 public:
  UniformGossipProcess(ProcessId id, double p, std::uint64_t seed)
      : TokenProcess(id), p_(p), rng_(seed) {}
  UniformGossipProcess(const UniformGossipProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    if (!rng_.bernoulli(p_, round)) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  /// Counter-based coins make the flat p-schedule a pure function of the
  /// round once the token round is fixed, so the next transmission round
  /// is computable by scanning the same coins the per-round poll would
  /// have drawn (same pattern as harmonic). The scan is *capped*: with a
  /// tiny p (say 1e-9, or 1/(n-1) at n = 10^6 against a short round cap)
  /// an exact answer could cost arbitrarily more than the execution it
  /// schedules, so after kScanCap silent coins the hint conservatively
  /// returns the first unscanned round — over-promising is legal, the
  /// engine just re-asks there and the scan resumes chunk by chunk.
  /// Memoized on exact hits: the token round is set at most once
  /// (TokenProcess), after which the schedule never changes, so a computed
  /// answer stays valid for every `from` up to it.
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token()) return kNever;
    from = std::max(from, token_round() + 1);
    if (memo_next_ != kUnplanned && from >= memo_from_ && from <= memo_next_) {
      return memo_next_;
    }
    Round r = from;
    while (!rng_.bernoulli(p_, r)) {
      if (++r - from >= kScanCap) return r;  // all of [from, r) is silent
    }
    memo_from_ = from;
    memo_next_ = r;
    return r;
  }

  /// State is the token round only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<UniformGossipProcess>(*this);
  }

 private:
  static constexpr Round kUnplanned = -2;
  /// Coins scanned per hint call before giving a conservative answer. At
  /// the default p = 1/(n-1) this resolves the expected gap exactly for
  /// n <= ~4k and costs one re-ask per 4096 rounds beyond that.
  static constexpr Round kScanCap = 4096;

  double p_;
  CounterRng rng_;
  /// Next send >= memo_from_; valid while the token state is unchanged
  /// (which, after acquisition, is forever).
  mutable Round memo_from_ = 0;
  mutable Round memo_next_ = kUnplanned;
};

}  // namespace

ProcessFactory make_uniform_gossip_factory(NodeId n,
                                           const UniformGossipOptions& options) {
  const double p = uniform_gossip_p(n, options);
  return [p, n](ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<UniformGossipProcess>(id, p, seed);
  };
}

}  // namespace dualrad
