#pragma once

#include <cstdint>

#include "core/process.hpp"

/// \file harmonic.hpp
/// The Harmonic Broadcast randomized algorithm (Section 7).
///
/// A node v that first receives the message in round t_v transmits in every
/// round t > t_v with probability
///     p_v(t) = 1 / (1 + floor((t - t_v - 1) / T)),
/// i.e. probability 1 for the first T rounds after receipt, then 1/2 for T
/// rounds, then 1/3, ... The source has t_s = 0. With T = ceil(12 ln(n/eps))
/// the broadcast completes within 2 n T H(n) rounds with probability at
/// least 1 - eps (Theorem 18); with eps = n^{-O(1)} this is O(n log^2 n)
/// w.h.p. (Theorem 19). Works under CR4 and asynchronous start, directed or
/// undirected networks.

namespace dualrad {

struct HarmonicOptions {
  /// The parameter T ("script T" in the paper). 0 means derive it as
  /// ceil(constant * ln(n / eps)).
  Round T = 0;
  double eps = 0.1;
  /// The paper's proof constant is 12; exposed for the A3 ablation.
  double constant = 12.0;
};

/// The T that make_harmonic_factory(n, options) will use.
[[nodiscard]] Round harmonic_T(NodeId n, const HarmonicOptions& options = {});

/// p_v(t) for a node with token round t_v (pure; exposed for tests and the
/// busy-round audit of Lemma 15).
[[nodiscard]] double harmonic_probability(Round t, Round token_round, Round T);

/// The paper's completion bound 2 n T H(n) (Theorem 18).
[[nodiscard]] Round harmonic_round_bound(NodeId n, Round T);

[[nodiscard]] ProcessFactory make_harmonic_factory(
    NodeId n, const HarmonicOptions& options = {});

}  // namespace dualrad
