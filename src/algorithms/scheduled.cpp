#include "algorithms/scheduled.hpp"

#include <memory>

#include "algorithms/broadcast_algorithm.hpp"

namespace dualrad {
namespace {

class ScheduledProcess final : public TokenProcess {
 public:
  ScheduledProcess(ProcessId id, std::shared_ptr<const std::vector<ProcessId>> slots)
      : TokenProcess(id), slots_(std::move(slots)) {}
  ScheduledProcess(const ScheduledProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    const auto period = static_cast<Round>(slots_->size());
    if ((*slots_)[static_cast<std::size_t>((round - 1) % period)] != id()) {
      return Action::silent();
    }
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<ScheduledProcess>(*this);
  }

 private:
  std::shared_ptr<const std::vector<ProcessId>> slots_;
};

}  // namespace

ProcessFactory make_scheduled_factory(NodeId n, std::vector<ProcessId> slots) {
  DUALRAD_REQUIRE(!slots.empty(), "schedule must be non-empty");
  for (ProcessId p : slots) {
    DUALRAD_REQUIRE(p >= 0 && p < n, "schedule entry out of range");
  }
  auto shared = std::make_shared<const std::vector<ProcessId>>(std::move(slots));
  return [shared, n](ProcessId id, NodeId n_arg, std::uint64_t /*seed*/) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<ScheduledProcess>(id, shared);
  };
}

}  // namespace dualrad
