#include "algorithms/scheduled.hpp"

#include <algorithm>
#include <memory>

#include "algorithms/broadcast_algorithm.hpp"

namespace dualrad {
namespace {

class ScheduledProcess final : public TokenProcess {
 public:
  ScheduledProcess(ProcessId id, std::shared_ptr<const std::vector<ProcessId>> slots)
      : TokenProcess(id), slots_(std::move(slots)) {
    for (std::size_t s = 0; s < slots_->size(); ++s) {
      if ((*slots_)[s] == id) my_slots_.push_back(static_cast<Round>(s));
    }
  }
  ScheduledProcess(const ScheduledProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    const auto period = static_cast<Round>(slots_->size());
    if ((*slots_)[static_cast<std::size_t>((round - 1) % period)] != id()) {
      return Action::silent();
    }
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  /// Exact hint: the first round >= `from` whose schedule slot names this
  /// process (my_slots_ holds its slot offsets within a period, ascending);
  /// kNever for processes the schedule omits entirely.
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token() || my_slots_.empty()) return kNever;
    from = std::max(from, token_round() + 1);
    const auto period = static_cast<Round>(slots_->size());
    const Round offset = (from - 1) % period;
    Round cycle_start = from - 1 - offset;  // round before this period began
    auto it = std::lower_bound(my_slots_.begin(), my_slots_.end(), offset);
    if (it == my_slots_.end()) {
      cycle_start += period;
      it = my_slots_.begin();
    }
    return cycle_start + *it + 1;
  }

  /// State is the token round only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<ScheduledProcess>(*this);
  }

 private:
  std::shared_ptr<const std::vector<ProcessId>> slots_;
  std::vector<Round> my_slots_;  ///< slot indices within a period, ascending
};

}  // namespace

ProcessFactory make_scheduled_factory(NodeId n, std::vector<ProcessId> slots) {
  DUALRAD_REQUIRE(!slots.empty(), "schedule must be non-empty");
  for (ProcessId p : slots) {
    DUALRAD_REQUIRE(p >= 0 && p < n, "schedule entry out of range");
  }
  auto shared = std::make_shared<const std::vector<ProcessId>>(std::move(slots));
  return [shared, n](ProcessId id, NodeId n_arg, std::uint64_t /*seed*/) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<ScheduledProcess>(id, shared);
  };
}

}  // namespace dualrad
