#pragma once

#include <vector>

#include "core/types.hpp"

/// \file wakeup_analysis.hpp
/// Executable combinatorics of Section 7's analysis: wake-up patterns and
/// busy rounds (Lemmas 14 and 15).
///
/// A wake-up pattern is a non-decreasing sequence 0 = t_1 <= ... <= t_n of
/// rounds at which the n nodes first receive the message. The pattern fully
/// determines every node's transmission probability in every round. Round t
/// is *busy* if the probabilities sum to >= 1, else *free*.
///
/// Lemma 14: some busy-round-maximizing pattern has all its busy rounds
/// first. Lemma 15: no pattern induces more than n * T * H(n) busy rounds.
/// This module computes the quantities so the suite can check both on
/// exhaustive small instances and on adversarially-shaped patterns.

namespace dualrad::wakeup {

/// Sum of transmission probabilities in round t under `pattern`.
[[nodiscard]] double probability_sum(const std::vector<Round>& pattern,
                                     Round t, Round T);

/// Total busy rounds induced by `pattern` up to `horizon`
/// (horizon defaults to the Lemma 15 bound, past which everything is free).
[[nodiscard]] Round busy_rounds(const std::vector<Round>& pattern, Round T,
                                Round horizon = 0);

/// First free round >= 1 (the tau of Lemma 15's induction).
[[nodiscard]] Round first_free_round(const std::vector<Round>& pattern,
                                     Round T);

/// The Lemma 15 bound n * T * H(n), rounded up.
[[nodiscard]] Round lemma15_bound(NodeId n, Round T);

/// The extremal "stacked" pattern used in the Lemma 14 argument: all nodes
/// wake as early as possible subject to waking one per step: t_i = i - 1.
[[nodiscard]] std::vector<Round> stacked_pattern(NodeId n);

/// Exhaustively enumerate all non-decreasing patterns with entries in
/// [0, max_round] (t_1 = 0) and return the maximum busy-round count.
/// Cost: C(max_round + n - 1, n - 1); intended for small n (tests).
[[nodiscard]] Round max_busy_rounds_exhaustive(NodeId n, Round T,
                                               Round max_round);

}  // namespace dualrad::wakeup
