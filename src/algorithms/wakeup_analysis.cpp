#include "algorithms/wakeup_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "algorithms/harmonic.hpp"

namespace dualrad::wakeup {

double probability_sum(const std::vector<Round>& pattern, Round t, Round T) {
  DUALRAD_REQUIRE(T >= 1, "T must be positive");
  double sum = 0.0;
  // lint: fp-ok (serial loop in the caller-given pattern order)
  for (Round tv : pattern) sum += harmonic_probability(t, tv, T);
  return sum;
}

Round lemma15_bound(NodeId n, Round T) {
  double h = 0.0;
  // lint: fp-ok (serial loop in fixed 1..n order, never sharded)
  for (NodeId i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return static_cast<Round>(std::ceil(static_cast<double>(n) *
                                      static_cast<double>(T) * h));
}

Round busy_rounds(const std::vector<Round>& pattern, Round T, Round horizon) {
  DUALRAD_REQUIRE(!pattern.empty(), "pattern must be non-empty");
  DUALRAD_REQUIRE(std::is_sorted(pattern.begin(), pattern.end()),
                  "pattern must be non-decreasing");
  if (horizon <= 0) {
    // Past max(t_v) + n * T, each node's probability is < 1/n, so the sum is
    // < 1 and every round is free; the Lemma 15 bound horizon also works.
    horizon = pattern.back() +
              static_cast<Round>(pattern.size()) * T +
              lemma15_bound(static_cast<NodeId>(pattern.size()), T);
  }
  Round busy = 0;
  for (Round t = 1; t <= horizon; ++t) {
    if (probability_sum(pattern, t, T) >= 1.0) ++busy;
  }
  return busy;
}

Round first_free_round(const std::vector<Round>& pattern, Round T) {
  for (Round t = 1;; ++t) {
    if (probability_sum(pattern, t, T) < 1.0) return t;
  }
}

std::vector<Round> stacked_pattern(NodeId n) {
  std::vector<Round> pattern(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    pattern[static_cast<std::size_t>(i)] = i;
  }
  return pattern;
}

namespace {

Round enumerate(std::vector<Round>& pattern, std::size_t index, Round lo,
                Round max_round, Round T) {
  if (index == pattern.size()) return busy_rounds(pattern, T);
  Round best = 0;
  for (Round t = lo; t <= max_round; ++t) {
    pattern[index] = t;
    best = std::max(best, enumerate(pattern, index + 1, t, max_round, T));
  }
  return best;
}

}  // namespace

Round max_busy_rounds_exhaustive(NodeId n, Round T, Round max_round) {
  DUALRAD_REQUIRE(n >= 1 && n <= 8, "exhaustive search is for small n");
  std::vector<Round> pattern(static_cast<std::size_t>(n), 0);
  return enumerate(pattern, 1, 0, max_round, T);
}

}  // namespace dualrad::wakeup
