#pragma once

#include <memory>
#include <vector>

#include "core/process.hpp"
#include "selectors/kautz_singleton.hpp"
#include "selectors/ssf.hpp"

/// \file strong_select.hpp
/// The Strong Select deterministic broadcast algorithm (Section 5).
///
/// Rounds are divided into epochs of length 2^{s_max} - 1. Within an epoch,
/// round 1 is dedicated to the smallest SSF F_1, rounds 2-3 to F_2, rounds
/// 4-7 to F_3, ...: 2^{s-1} sets of F_s per epoch, so each family advances
/// through its sets at a rate proportional to its strength. F_s is an
/// (n, 2^s)-SSF; the largest family F_{s_max} (k = 2^{s_max} ~ sqrt(n/log n))
/// is the round-robin sequence, an (n,n)-SSF.
///
/// A node that first receives the message waits, for each s, until F_s cycles
/// back to its first set, participates in exactly one full iteration of F_s
/// (broadcasting whenever its id is in the current set), then stops using
/// that family; when it has finished one iteration of every family it stops
/// broadcasting forever. Participating exactly once bounds the interval
/// during which a node whose reliable neighbors are all covered can still
/// interfere with uncovered nodes — the crux of the dual-graph analysis
/// (see the discussion before Definition 6).
///
/// The theorem: broadcast completes within O(n^{3/2} sqrt(log n)) rounds in
/// any directed or undirected dual graph network, under CR4 and asynchronous
/// start (Theorem 10).

namespace dualrad {

/// Precomputed schedule shared by all processes of one Strong Select
/// instance: the SSF families and the round -> (family, slot) geometry.
class StrongSelectSchedule {
 public:
  /// Index of a round within the epoch structure.
  struct Slot {
    int s = 0;        ///< family index, 1-based
    Round index = 0;  ///< global slot counter of family s (0-based)
  };

  static std::shared_ptr<const StrongSelectSchedule> make(
      NodeId n, const SsfProvider& provider);

  [[nodiscard]] NodeId n() const { return n_; }
  [[nodiscard]] int s_max() const { return s_max_; }
  [[nodiscard]] Round epoch_length() const { return epoch_len_; }
  [[nodiscard]] const SsfFamily& family(int s) const;
  /// Number of sets in family s (the paper's ell_s).
  [[nodiscard]] Round ell(int s) const;
  /// Rounds for one complete iteration of family s
  /// (ell'_s = ell_s (2^{s_max}-1) / 2^{s-1} in the paper).
  [[nodiscard]] Round iteration_rounds(int s) const;

  /// Which family set is scheduled at round r (r >= 1).
  [[nodiscard]] Slot slot_of_round(Round r) const;

  /// Number of family-s slots scheduled in rounds [1, t] (t >= 0); this is
  /// also the 0-based index of the first family-s slot after round t.
  [[nodiscard]] Round slots_before(Round t, int s) const;

  /// The slot index at which a node that received the message at round t
  /// starts its (single) iteration of family s: the first multiple of
  /// ell(s) at or after slots_before(t, s).
  [[nodiscard]] Round participation_start(Round token_round, int s) const;

  /// An upper bound on the round by which a node that received the token at
  /// round t has finished all families (used by termination tests).
  [[nodiscard]] Round done_round_bound(Round token_round) const;

  /// Closed-form epoch walk: the first round >= `from` at which a process
  /// with id `id` that received the token at `token_round` transmits in one
  /// of family s's slots — respecting its participation window (one full
  /// iteration starting at participation_start, or unbounded when `forever`)
  /// — or kNever if that window is exhausted or no set of F_s contains id.
  /// O(log |sets containing id|): a slot-index computation plus one binary
  /// search in the family's membership index; no per-round scan.
  [[nodiscard]] Round next_family_send(int s, ProcessId id, Round token_round,
                                       bool forever, Round from) const;

 private:
  StrongSelectSchedule() = default;

  NodeId n_ = 0;
  int s_max_ = 0;
  Round epoch_len_ = 0;
  std::vector<SsfFamily> families_{};
};

struct StrongSelectOptions {
  /// SSF provider for families F_1 .. F_{s_max - 1}; F_{s_max} is always
  /// round-robin as in the paper. Default: constructive Kautz-Singleton.
  SsfProvider provider = [](NodeId n, NodeId k) {
    return kautz_singleton_ssf(n, k);
  };
  /// Ablation: participate in every iteration of every family after joining
  /// (the classical reliable-model strategy of [6,7]) instead of exactly
  /// once. Nodes then never stop broadcasting.
  bool participate_forever = false;
};

/// Factory for Strong Select processes. The schedule is computed once per
/// factory and shared among processes.
[[nodiscard]] ProcessFactory make_strong_select_factory(
    NodeId n, const StrongSelectOptions& options = {});

/// Direct access to the schedule a factory would use (for tests/benches).
[[nodiscard]] std::shared_ptr<const StrongSelectSchedule>
make_strong_select_schedule(NodeId n, const StrongSelectOptions& options = {});

}  // namespace dualrad
