#include "algorithms/cms_oblivious.hpp"

#include <algorithm>
#include <memory>

#include "algorithms/broadcast_algorithm.hpp"
#include "selectors/kautz_singleton.hpp"

namespace dualrad {
namespace {

class CmsObliviousProcess final : public TokenProcess {
 public:
  CmsObliviousProcess(ProcessId id, std::shared_ptr<const SsfFamily> family)
      : TokenProcess(id), family_(std::move(family)) {}
  CmsObliviousProcess(const CmsObliviousProcess&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!has_token() || round <= token_round()) return Action::silent();
    const auto slot = static_cast<std::size_t>(
        (round - 1) % static_cast<Round>(family_->size()));
    if (!family_->contains(slot, id())) return Action::silent();
    return Action::transmit(Message{/*token=*/true, /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  /// Exact hint off the family's precomputed membership index: the first
  /// round >= `from` whose selector set contains this id. An SSF round
  /// carries O(k) of n senders, so the calendar elision is what keeps CMS
  /// runs (period = |F| rounds per iteration) off the per-round poll path.
  [[nodiscard]] Round next_send_round(Round from) const override {
    if (!has_token()) return kNever;
    const std::vector<std::uint32_t>& mine = family_->sets_containing(id());
    if (mine.empty()) return kNever;
    from = std::max(from, token_round() + 1);
    const auto period = static_cast<Round>(family_->size());
    const Round offset = (from - 1) % period;
    Round cycle_start = from - 1 - offset;  // round before this period began
    auto it = std::lower_bound(mine.begin(), mine.end(),
                               static_cast<std::uint32_t>(offset));
    if (it == mine.end()) {
      cycle_start += period;
      it = mine.begin();
    }
    return cycle_start + static_cast<Round>(*it) + 1;
  }

  /// State is the token round only; silence receptions are no-ops.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<CmsObliviousProcess>(*this);
  }

 private:
  std::shared_ptr<const SsfFamily> family_;
};

}  // namespace

ProcessFactory make_cms_oblivious_factory(NodeId n,
                                          const CmsObliviousOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "cms oblivious needs n >= 2");
  DUALRAD_REQUIRE(options.delta >= 1, "delta (known in-degree bound) required");
  const NodeId k = std::min<NodeId>(n, options.delta + 1);
  const SsfFamily family = options.provider ? options.provider(n, k)
                                            : kautz_singleton_ssf(n, k);
  auto shared = std::make_shared<const SsfFamily>(std::move(family));
  return [shared, n](ProcessId id, NodeId n_arg, std::uint64_t /*seed*/) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<CmsObliviousProcess>(id, shared);
  };
}

}  // namespace dualrad
