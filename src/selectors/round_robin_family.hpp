#pragma once

#include "selectors/ssf.hpp"

/// \file round_robin_family.hpp
/// The round-robin family {{0}, {1}, ..., {n-1}}: the canonical (n,n)-SSF of
/// size n. Strong Select uses it as its largest family F_{s_max} (Section 5).

namespace dualrad {

[[nodiscard]] SsfFamily round_robin_family(NodeId n);

/// Provider adapter (ignores k; always strongly selective for any k <= n).
[[nodiscard]] SsfFamily round_robin_provider(NodeId n, NodeId k);

}  // namespace dualrad
