#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

/// \file gf.hpp
/// Prime-field arithmetic for the Kautz-Singleton superimposed-code
/// construction: primality testing, prime search, and Reed-Solomon codeword
/// evaluation over GF(q) for prime q.

namespace dualrad::gf {

[[nodiscard]] bool is_prime(std::uint64_t x);

/// Smallest prime >= x (x >= 2).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t x);

/// Arithmetic in GF(q), q prime (q < 2^31 so products fit in 64 bits).
class PrimeField {
 public:
  explicit PrimeField(std::uint32_t q);

  [[nodiscard]] std::uint32_t order() const { return q_; }
  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return static_cast<std::uint32_t>(s >= q_ ? s - q_ : s);
  }
  [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(a) * b) % q_);
  }

  /// Evaluate the polynomial with coefficients `coeffs` (coeffs[0] is the
  /// constant term) at point x, by Horner's rule.
  [[nodiscard]] std::uint32_t eval(const std::vector<std::uint32_t>& coeffs,
                                   std::uint32_t x) const;

 private:
  std::uint32_t q_;
};

/// The base-q digits of `value`, least significant first, padded to `width`.
/// Requires value < q^width.
[[nodiscard]] std::vector<std::uint32_t> base_q_digits(std::uint64_t value,
                                                       std::uint32_t q,
                                                       std::size_t width);

}  // namespace dualrad::gf
