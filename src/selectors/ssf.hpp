#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"

/// \file ssf.hpp
/// Strongly Selective Families (Definition 6, after [8]).
///
/// A family F of subsets of [n] is (n,k)-strongly selective if for every
/// non-empty Z subset of [n] with |Z| <= k and every z in Z there is a set
/// F_i in the family with Z intersect F_i = {z}.
///
/// Strong Select (Section 5) cycles through SSFs of exponentially increasing
/// strength; the quality (size) of the families is the sqrt(log n) factor in
/// its running time. This module provides the family type, exact and sampled
/// verification, and three providers: round-robin ((n,n)-SSF of size n),
/// the constructive Kautz-Singleton families of size O(k^2 log^2 n) the paper
/// points to for a constructive variant, and randomized families matching the
/// existential O(k^2 log n) bound of Erdos-Frankl-Furedi w.h.p.

namespace dualrad {

/// An ordered family of subsets of {0..n-1} with O(1) membership queries.
class SsfFamily {
 public:
  /// `sets` may be in any order internally but their order is the broadcast
  /// schedule order; elements must be valid and distinct within a set.
  SsfFamily(NodeId universe, std::vector<std::vector<NodeId>> sets);

  [[nodiscard]] NodeId universe() const { return universe_; }
  [[nodiscard]] std::size_t size() const { return sets_.size(); }
  [[nodiscard]] const std::vector<NodeId>& set(std::size_t index) const;
  [[nodiscard]] bool contains(std::size_t index, NodeId x) const;
  [[nodiscard]] std::size_t max_set_size() const;

  /// Indices of the sets containing x, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& sets_containing(NodeId x) const;

 private:
  NodeId universe_;
  std::vector<std::vector<NodeId>> sets_;
  std::vector<std::vector<std::uint64_t>> bits_;  // per set, n-bit membership
  std::vector<std::vector<std::uint32_t>> containing_;  // per element
};

/// Exact verification that `family` is (n,k)-strongly selective. Cost is
/// exponential in k (set-cover search per element); intended for tests and
/// small instances.
[[nodiscard]] bool is_strongly_selective(const SsfFamily& family, NodeId k);

/// Check the selection property for one concrete Z: returns the elements of
/// Z that are NOT isolated by any set (empty result = Z fully selected).
[[nodiscard]] std::vector<NodeId> unselected_in(const SsfFamily& family,
                                                const std::vector<NodeId>& z);

/// Monte-Carlo verification: draws `trials` random subsets of size <= k and
/// checks each; returns the number of failing (Z, z) pairs found.
[[nodiscard]] std::size_t sample_violations(const SsfFamily& family, NodeId k,
                                            std::size_t trials,
                                            std::uint64_t seed);

/// Provider signature used by Strong Select to obtain its families.
using SsfProvider = std::function<SsfFamily(NodeId n, NodeId k)>;

}  // namespace dualrad
