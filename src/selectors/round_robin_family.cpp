#include "selectors/round_robin_family.hpp"

namespace dualrad {

SsfFamily round_robin_family(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "round robin needs n >= 1");
  std::vector<std::vector<NodeId>> sets;
  sets.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) sets.push_back({i});
  return SsfFamily(n, std::move(sets));
}

SsfFamily round_robin_provider(NodeId n, NodeId k) {
  (void)k;
  return round_robin_family(n);
}

}  // namespace dualrad
