#pragma once

#include "selectors/ssf.hpp"

/// \file kautz_singleton.hpp
/// The constructive Kautz-Singleton (1964) superimposed-code SSF referenced
/// in Section 5 ("A Note on Constructive Solutions").
///
/// Construction: encode each id in [n] as a Reed-Solomon codeword — the
/// evaluations of a degree-(m-1) polynomial over GF(q) at all q points — and
/// emit one set per (position, symbol) pair:
///     F_{i,a} = { x in [n] : codeword_x[i] == a }.
///
/// Two distinct ids agree in at most m-1 positions, so for any z and any
/// k-1 other ids there are at most (k-1)(m-1) "spoiled" positions; choosing
/// q > (k-1)(m-1) guarantees a position i where z's symbol differs from all
/// of them, and F_{i, codeword_z[i]} isolates z. The family is therefore an
/// (n,k)-SSF of size q^2 = O(k^2 log^2 n) for the optimal choice of m.
/// Whenever that exceeds n, the round-robin family (size n) is returned
/// instead, matching the paper's O(min{n, ...}) form.

namespace dualrad {

struct KautzSingletonPlan {
  std::uint32_t q = 0;      ///< field order (prime)
  std::uint32_t m = 0;      ///< number of polynomial coefficients
  std::size_t num_sets = 0; ///< q*q, or n if round-robin fallback is cheaper
  bool round_robin_fallback = false;
};

/// The (q, m) choice for given (n, k), minimizing family size q^2.
[[nodiscard]] KautzSingletonPlan kautz_singleton_plan(NodeId n, NodeId k);

/// Build the (n,k)-SSF. Requires 1 <= k <= n.
[[nodiscard]] SsfFamily kautz_singleton_ssf(NodeId n, NodeId k);

}  // namespace dualrad
