#include "selectors/ssf.hpp"

#include <algorithm>

#include "core/rng.hpp"

namespace dualrad {
namespace {

constexpr std::size_t kWordBits = 64;

std::size_t words_for(NodeId n) {
  return (static_cast<std::size_t>(n) + kWordBits - 1) / kWordBits;
}

}  // namespace

SsfFamily::SsfFamily(NodeId universe, std::vector<std::vector<NodeId>> sets)
    : universe_(universe), sets_(std::move(sets)) {
  DUALRAD_REQUIRE(universe_ >= 1, "SSF universe must be non-empty");
  bits_.resize(sets_.size());
  containing_.resize(static_cast<std::size_t>(universe_));
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    auto& set = sets_[i];
    std::sort(set.begin(), set.end());
    DUALRAD_REQUIRE(std::adjacent_find(set.begin(), set.end()) == set.end(),
                    "SSF set contains duplicates");
    bits_[i].assign(words_for(universe_), 0);
    for (NodeId x : set) {
      DUALRAD_REQUIRE(x >= 0 && x < universe_, "SSF element out of range");
      bits_[i][static_cast<std::size_t>(x) / kWordBits] |=
          1ULL << (static_cast<std::size_t>(x) % kWordBits);
      containing_[static_cast<std::size_t>(x)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
}

const std::vector<NodeId>& SsfFamily::set(std::size_t index) const {
  DUALRAD_REQUIRE(index < sets_.size(), "SSF set index out of range");
  return sets_[index];
}

bool SsfFamily::contains(std::size_t index, NodeId x) const {
  DUALRAD_REQUIRE(index < sets_.size(), "SSF set index out of range");
  if (x < 0 || x >= universe_) return false;
  return (bits_[index][static_cast<std::size_t>(x) / kWordBits] >>
          (static_cast<std::size_t>(x) % kWordBits)) & 1ULL;
}

std::size_t SsfFamily::max_set_size() const {
  std::size_t best = 0;
  for (const auto& s : sets_) best = std::max(best, s.size());
  return best;
}

const std::vector<std::uint32_t>& SsfFamily::sets_containing(NodeId x) const {
  DUALRAD_REQUIRE(x >= 0 && x < universe_, "element out of range");
  return containing_[static_cast<std::size_t>(x)];
}

std::vector<NodeId> unselected_in(const SsfFamily& family,
                                  const std::vector<NodeId>& z) {
  std::vector<NodeId> failures;
  for (NodeId zi : z) {
    bool isolated = false;
    for (std::uint32_t fi : family.sets_containing(zi)) {
      bool clean = true;
      for (NodeId other : z) {
        if (other != zi && family.contains(fi, other)) {
          clean = false;
          break;
        }
      }
      if (clean) {
        isolated = true;
        break;
      }
    }
    if (!isolated) failures.push_back(zi);
  }
  return failures;
}

namespace {

/// Set-cover search: can we choose <= budget elements (!= z) whose
/// containing-sets cover all of `remaining` (indices into family sets that
/// contain z)? If yes, those elements plus z witness a violation.
bool coverable(const SsfFamily& family, NodeId z,
               std::vector<std::uint32_t> remaining, NodeId budget,
               std::vector<NodeId>& chosen) {
  if (remaining.empty()) return true;
  if (budget == 0) return false;
  // Branch on the first uncovered set: some chosen element must lie in it.
  const std::uint32_t fi = remaining.front();
  for (NodeId y : family.set(fi)) {
    if (y == z) continue;
    if (std::find(chosen.begin(), chosen.end(), y) != chosen.end()) continue;
    std::vector<std::uint32_t> next;
    next.reserve(remaining.size());
    for (std::uint32_t r : remaining) {
      if (!family.contains(r, y)) next.push_back(r);
    }
    chosen.push_back(y);
    if (coverable(family, z, std::move(next), budget - 1, chosen)) return true;
    chosen.pop_back();
  }
  return false;
}

}  // namespace

bool is_strongly_selective(const SsfFamily& family, NodeId k) {
  DUALRAD_REQUIRE(k >= 1, "k must be positive");
  for (NodeId z = 0; z < family.universe(); ++z) {
    const auto& owning = family.sets_containing(z);
    if (owning.empty()) return false;  // Z = {z} is never selected
    // A violation for z is a set of <= k-1 other elements covering all sets
    // that contain z.
    std::vector<NodeId> chosen;
    if (k >= 2 &&
        coverable(family, z, {owning.begin(), owning.end()},
                  static_cast<NodeId>(k - 1), chosen)) {
      return false;
    }
  }
  return true;
}

std::size_t sample_violations(const SsfFamily& family, NodeId k,
                              std::size_t trials, std::uint64_t seed) {
  StreamRng rng(seed);
  const NodeId n = family.universe();
  std::size_t violations = 0;
  std::vector<NodeId> pool(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto size = static_cast<std::size_t>(
        1 + rng.below(static_cast<std::uint64_t>(std::min(k, n))));
    // Partial Fisher-Yates for a uniform size-subset.
    for (std::size_t i = 0; i < size; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    const std::vector<NodeId> z(pool.begin(),
                                pool.begin() + static_cast<std::ptrdiff_t>(size));
    violations += unselected_in(family, z).size();
  }
  return violations;
}

}  // namespace dualrad
