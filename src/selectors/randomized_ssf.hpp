#pragma once

#include <cstdint>

#include "selectors/ssf.hpp"

/// \file randomized_ssf.hpp
/// Randomized SSF matching the existential O(k^2 log n) size bound of
/// Erdos-Frankl-Furedi [14] (Theorem 7) with high probability.
///
/// Each of L = ceil(factor * k^2 * ln(n+1)) sets includes each element
/// independently with probability 1/k. For a fixed (Z, z) with |Z| <= k the
/// per-set isolation probability is at least (1/k)(1-1/k)^{k-1} >= 1/(e k),
/// so the failure probability of the family decays exponentially in
/// factor; factor >= 4 pushes it below n^{-k+1}-style union bounds for the
/// instance sizes used here. Verification helpers live in ssf.hpp.

namespace dualrad {

struct RandomizedSsfParams {
  double factor = 4.0;      ///< multiplier on k^2 ln n
  std::uint64_t seed = 1;
};

[[nodiscard]] SsfFamily randomized_ssf(NodeId n, NodeId k,
                                       const RandomizedSsfParams& params = {});

/// Provider adapter with a fixed seed/factor.
[[nodiscard]] SsfProvider make_randomized_ssf_provider(
    const RandomizedSsfParams& params = {});

}  // namespace dualrad
