#include "selectors/gf.hpp"

namespace dualrad::gf {

bool is_prime(std::uint64_t x) {
  if (x < 2) return false;
  if (x % 2 == 0) return x == 2;
  if (x % 3 == 0) return x == 3;
  for (std::uint64_t d = 5; d * d <= x; d += 6) {
    if (x % d == 0 || x % (d + 2) == 0) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t x) {
  if (x <= 2) return 2;
  std::uint64_t candidate = x | 1;  // first odd >= x
  while (!is_prime(candidate)) candidate += 2;
  return candidate;
}

PrimeField::PrimeField(std::uint32_t q) : q_(q) {
  DUALRAD_REQUIRE(is_prime(q), "field order must be prime");
}

std::uint32_t PrimeField::eval(const std::vector<std::uint32_t>& coeffs,
                               std::uint32_t x) const {
  std::uint32_t acc = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    acc = add(mul(acc, x), *it % q_);
  }
  return acc;
}

std::vector<std::uint32_t> base_q_digits(std::uint64_t value, std::uint32_t q,
                                         std::size_t width) {
  DUALRAD_REQUIRE(q >= 2, "base must be >= 2");
  std::vector<std::uint32_t> digits(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    digits[i] = static_cast<std::uint32_t>(value % q);
    value /= q;
  }
  DUALRAD_REQUIRE(value == 0, "value does not fit in q^width");
  return digits;
}

}  // namespace dualrad::gf
