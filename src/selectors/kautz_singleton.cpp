#include "selectors/kautz_singleton.hpp"

#include <algorithm>
#include <cmath>

#include "selectors/gf.hpp"
#include "selectors/round_robin_family.hpp"

namespace dualrad {
namespace {

/// Smallest prime q with q^m >= n and q >= lo. Returns 0 on overflow risk.
std::uint64_t min_prime_for(std::uint64_t n, std::uint32_t m,
                            std::uint64_t lo) {
  // q >= ceil(n^(1/m))
  auto pow_ge = [](std::uint64_t q, std::uint32_t m, std::uint64_t n) {
    // __extension__: __int128 is a GCC/Clang extension (silences -Wpedantic).
    __extension__ unsigned __int128 acc = 1;
    for (std::uint32_t i = 0; i < m; ++i) {
      acc *= q;
      if (acc >= n) return true;
    }
    return acc >= n;
  };
  std::uint64_t base = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(
             std::floor(std::pow(static_cast<double>(n), 1.0 / m))));
  // Guard against floating-point off-by-one on the root.
  while (base > 2 && pow_ge(base - 1, m, n)) --base;
  while (!pow_ge(base, m, n)) ++base;
  return gf::next_prime(std::max(base, lo));
}

}  // namespace

KautzSingletonPlan kautz_singleton_plan(NodeId n, NodeId k) {
  DUALRAD_REQUIRE(n >= 1 && k >= 1 && k <= n, "need 1 <= k <= n");
  KautzSingletonPlan best;
  best.round_robin_fallback = true;
  best.num_sets = static_cast<std::size_t>(n);
  if (k == 1) {
    // A single set [n] isolates every singleton; but keep uniform machinery:
    // round-robin is also fine and size n. Choose the singleton family via
    // q=..., simpler: report fallback (callers treat k==1 specially).
    return best;
  }
  const auto un = static_cast<std::uint64_t>(n);
  const auto max_m =
      static_cast<std::uint32_t>(std::ceil(std::log2(static_cast<double>(n)))) + 1;
  for (std::uint32_t m = 1; m <= max_m; ++m) {
    const std::uint64_t lo = static_cast<std::uint64_t>(k - 1) * (m - 1) + 1;
    const std::uint64_t q = min_prime_for(un, m, lo);
    if (q == 0 || q >= (1ULL << 31)) continue;
    const std::uint64_t size = q * q;
    if (size < best.num_sets) {
      best.q = static_cast<std::uint32_t>(q);
      best.m = m;
      best.num_sets = static_cast<std::size_t>(size);
      best.round_robin_fallback = false;
    }
  }
  return best;
}

SsfFamily kautz_singleton_ssf(NodeId n, NodeId k) {
  DUALRAD_REQUIRE(n >= 1 && k >= 1 && k <= n, "need 1 <= k <= n");
  if (k == 1) {
    // The single set [n] is an (n,1)-SSF.
    std::vector<NodeId> all(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    return SsfFamily(n, {std::move(all)});
  }
  const KautzSingletonPlan plan = kautz_singleton_plan(n, k);
  if (plan.round_robin_fallback) return round_robin_family(n);

  const gf::PrimeField field(plan.q);
  // sets indexed by position * q + symbol.
  std::vector<std::vector<NodeId>> sets(plan.num_sets);
  for (NodeId x = 0; x < n; ++x) {
    const auto coeffs =
        gf::base_q_digits(static_cast<std::uint64_t>(x), plan.q, plan.m);
    for (std::uint32_t pos = 0; pos < plan.q; ++pos) {
      const std::uint32_t symbol = field.eval(coeffs, pos);
      sets[static_cast<std::size_t>(pos) * plan.q + symbol].push_back(x);
    }
  }
  return SsfFamily(n, std::move(sets));
}

}  // namespace dualrad
