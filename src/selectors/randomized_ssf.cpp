#include "selectors/randomized_ssf.hpp"

#include <cmath>

#include "core/rng.hpp"
#include "selectors/round_robin_family.hpp"

namespace dualrad {

SsfFamily randomized_ssf(NodeId n, NodeId k, const RandomizedSsfParams& params) {
  DUALRAD_REQUIRE(n >= 1 && k >= 1 && k <= n, "need 1 <= k <= n");
  DUALRAD_REQUIRE(params.factor > 0, "factor must be positive");
  const double ln_n = std::log(static_cast<double>(n) + 1.0);
  const auto num_sets = static_cast<std::size_t>(
      std::ceil(params.factor * static_cast<double>(k) * k * ln_n));
  if (num_sets >= static_cast<std::size_t>(n)) {
    // Same min{n, k^2 log n} shape as the existential bound.
    return round_robin_family(n);
  }
  StreamRng rng(mix_seed(params.seed, 0x55f));
  const double p = 1.0 / static_cast<double>(k);
  std::vector<std::vector<NodeId>> sets(num_sets);
  for (auto& set : sets) {
    for (NodeId x = 0; x < n; ++x) {
      if (rng.bernoulli(p)) set.push_back(x);
    }
  }
  return SsfFamily(n, std::move(sets));
}

SsfProvider make_randomized_ssf_provider(const RandomizedSsfParams& params) {
  return [params](NodeId n, NodeId k) { return randomized_ssf(n, k, params); };
}

}  // namespace dualrad
