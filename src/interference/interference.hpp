#pragma once

#include <memory>
#include <vector>

#include "core/adversary.hpp"
#include "core/process.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "graph/dual_graph.hpp"

/// \file interference.hpp
/// The explicit-interference model (Section 2.2) and the Lemma 1 adapter.
///
/// An explicit-interference network has a transmission graph G_T and an
/// interference graph G_I with G_T a subgraph of G_I, both static. When u
/// sends, its message *reaches* all of u's G_I-out-neighbors (contributing to
/// collisions there), but can be *received* only along G_T edges: a node
/// whose sole arriving message came over a G_I-only edge hears silence
/// (Appendix A).
///
/// Lemma 1: any algorithm that broadcasts in T(n) rounds in all dual graphs
/// under some collision rule also broadcasts in T(n) rounds in all
/// explicit-interference graphs under the corresponding rule. The proof
/// (Appendix A) simulates the interference behavior with a dual-graph
/// adversary on (G = G_T, G' = G_I) that fires exactly the interference
/// edges involved in a collision; `InterferenceSimAdversary` implements that
/// adversary and the tests/benches check round-by-round equivalence.

namespace dualrad {

class InterferenceNetwork {
 public:
  /// Validates G_T subgraph of G_I and reachability from the source in G_T.
  InterferenceNetwork(Graph transmission, Graph interference, NodeId source);

  [[nodiscard]] NodeId node_count() const { return gt_.node_count(); }
  [[nodiscard]] NodeId source() const { return source_; }
  [[nodiscard]] const Graph& gt() const { return gt_; }
  [[nodiscard]] const Graph& gi() const { return gi_; }

  /// The dual graph of Lemma 1's simulation: G = G_T, G' = G_I.
  [[nodiscard]] DualGraph to_dual() const;

 private:
  Graph gt_;
  Graph gi_;
  NodeId source_;
};

struct InterferenceConfig {
  CollisionRule rule = CollisionRule::CR1;
  StartRule start = StartRule::Synchronous;
  Round max_rounds = 1'000'000;
  std::uint64_t seed = 1;
  TraceLevel trace = TraceLevel::None;
  bool stop_on_completion = true;
};

struct InterferenceResult {
  bool completed = false;
  Round completion_round = kNever;
  Round rounds_executed = 0;
  std::vector<Round> first_token{};
  std::uint64_t total_sends = 0;
  Trace trace{};
};

/// Run an execution in the explicit-interference model. Under CR4,
/// collisions at non-senders resolve to silence (the canonical choice; the
/// Lemma 1 adversary mirrors it).
[[nodiscard]] InterferenceResult run_interference_broadcast(
    const InterferenceNetwork& net, const ProcessFactory& factory,
    const InterferenceConfig& config);

/// The Appendix A simulating adversary for the dual graph net.to_dual():
/// fires each G_I-only edge (v is the sender, u the target) exactly when
///   (1) some sender w has a G_T edge to u   [u suffers a real collision],
///   (2) u does not receive a message in the interference execution, and
///   (3) v sends.
/// CR4 collisions resolve to silence, matching run_interference_broadcast.
class InterferenceSimAdversary : public Adversary {
 public:
  InterferenceSimAdversary(const InterferenceNetwork& net, CollisionRule rule);

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;

 private:
  const InterferenceNetwork& inet_;
  CollisionRule rule_;
};

}  // namespace dualrad
