#include "interference/interference.hpp"

#include <algorithm>

#include "core/rng.hpp"
#include "graph/algorithms.hpp"

namespace dualrad {

InterferenceNetwork::InterferenceNetwork(Graph transmission,
                                         Graph interference, NodeId source)
    : gt_(std::move(transmission)),
      gi_(std::move(interference)),
      source_(source) {
  DUALRAD_REQUIRE(gt_.node_count() == gi_.node_count(),
                  "G_T and G_I must share a vertex set");
  DUALRAD_REQUIRE(gt_.is_subgraph_of(gi_), "G_T must be a subgraph of G_I");
  DUALRAD_REQUIRE(source_ >= 0 && source_ < gt_.node_count(),
                  "source out of range");
  DUALRAD_REQUIRE(graphalg::all_reachable(gt_, source_),
                  "every node must be reachable from the source in G_T");
}

DualGraph InterferenceNetwork::to_dual() const {
  return DualGraph(gt_, gi_, source_);
}

InterferenceResult run_interference_broadcast(const InterferenceNetwork& net,
                                              const ProcessFactory& factory,
                                              const InterferenceConfig& config) {
  const NodeId n = net.node_count();
  const auto un = static_cast<std::size_t>(n);

  InterferenceResult result;
  result.first_token.assign(un, kNever);
  // This engine targets the small dual-interference constructions of
  // Lemma 1; it has no memory-capped mode.
  DUALRAD_REQUIRE(config.trace != TraceLevel::Bounded,
                  "interference engine does not support TraceLevel::Bounded");
  result.trace.level = config.trace;

  std::vector<std::unique_ptr<Process>> proc_at(un);
  for (NodeId v = 0; v < n; ++v) {
    proc_at[static_cast<std::size_t>(v)] = factory(
        v, n, mix_seed(config.seed, static_cast<std::uint64_t>(v)));
  }

  std::vector<bool> awake(un, false);
  std::vector<bool> covered(un, false);

  const NodeId src = net.source();
  const Message env_msg{/*token=*/true, /*origin=*/kInvalidProcess,
                        /*round_tag=*/0, /*payload=*/0};
  covered[static_cast<std::size_t>(src)] = true;
  result.first_token[static_cast<std::size_t>(src)] = 0;
  proc_at[static_cast<std::size_t>(src)]->on_activate(0, env_msg);
  awake[static_cast<std::size_t>(src)] = true;
  if (config.start == StartRule::Synchronous) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == src) continue;
      proc_at[static_cast<std::size_t>(v)]->on_activate(0, std::nullopt);
      awake[static_cast<std::size_t>(v)] = true;
    }
  }

  std::vector<NodeId> senders;
  std::vector<Message> sent_msg(un);
  std::vector<bool> is_sender(un, false);
  // Arrivals: all messages from G_I-senders; receivable: subset over G_T.
  std::vector<int> arrival_count(un, 0);
  std::vector<int> receivable_count(un, 0);
  std::vector<Message> sole_receivable(un);
  std::vector<Reception> receptions(un);

  NodeId covered_count = 1;

  for (Round round = 1; round <= config.max_rounds; ++round) {
    result.rounds_executed = round;
    senders.clear();
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      is_sender[uv] = false;
      arrival_count[uv] = 0;
      receivable_count[uv] = 0;
      if (!awake[uv]) continue;
      const Action action = proc_at[uv]->next_action(round);
      if (!action.send) continue;
      DUALRAD_CHECK(!action.message.token || covered[uv],
                    "process sent the broadcast token without holding it");
      is_sender[uv] = true;
      sent_msg[uv] = action.message;
      senders.push_back(v);
    }
    result.total_sends += senders.size();

    for (NodeId u : senders) {
      const auto uu = static_cast<std::size_t>(u);
      ++arrival_count[uu];
      ++receivable_count[uu];
      sole_receivable[uu] = sent_msg[uu];
      for (NodeId v : net.gi().out_neighbors(u)) {
        const auto uv = static_cast<std::size_t>(v);
        ++arrival_count[uv];
        if (net.gt().has_edge(u, v)) {
          ++receivable_count[uv];
          sole_receivable[uv] = sent_msg[uu];
        }
      }
    }

    std::uint32_t collision_events = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      const int arrivals = arrival_count[uv];
      if (arrivals >= 2) ++collision_events;
      Reception rec = Reception::silence();
      const auto single = [&]() -> Reception {
        // Exactly one message reached v; deliverable only if it came over a
        // G_T edge (or is v's own).
        if (receivable_count[uv] == 1) return Reception::of(sole_receivable[uv]);
        return Reception::silence();
      };
      switch (config.rule) {
        case CollisionRule::CR1:
          if (arrivals == 1) {
            rec = single();
          } else if (arrivals >= 2) {
            rec = Reception::collision();
          }
          break;
        case CollisionRule::CR2:
        case CollisionRule::CR3:
        case CollisionRule::CR4:
          if (is_sender[uv]) {
            rec = Reception::of(sent_msg[uv]);
          } else if (arrivals == 1) {
            rec = single();
          } else if (arrivals >= 2) {
            // CR2: top; CR3: silence; CR4: canonical silence resolution.
            rec = config.rule == CollisionRule::CR2 ? Reception::collision()
                                                    : Reception::silence();
          }
          break;
      }
      receptions[uv] = rec;
    }

    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      const Reception& rec = receptions[uv];
      if (awake[uv]) {
        proc_at[uv]->on_receive(round, rec);
      } else if (rec.is_message()) {
        proc_at[uv]->on_activate(round, rec.message);
        awake[uv] = true;
      }
      if (rec.has_token() && !covered[uv]) {
        covered[uv] = true;
        result.first_token[uv] = round;
        ++covered_count;
      }
    }

    if (config.trace != TraceLevel::None) {
      result.trace.senders_per_round.push_back(
          static_cast<std::uint32_t>(senders.size()));
      result.trace.collisions_per_round.push_back(collision_events);
    }
    if (config.trace == TraceLevel::Full) {
      RoundRecord record;
      record.round = round;
      for (NodeId u : senders) {
        SenderRecord srec;
        srec.node = u;
        srec.message = sent_msg[static_cast<std::size_t>(u)];
        record.senders.push_back(std::move(srec));
      }
      record.receptions.assign(receptions.begin(), receptions.end());
      result.trace.rounds.push_back(std::move(record));
    }

    if (covered_count == n && !result.completed) {
      result.completed = true;
      result.completion_round = round;
      if (config.stop_on_completion) break;
    }
  }
  return result;
}

InterferenceSimAdversary::InterferenceSimAdversary(
    const InterferenceNetwork& net, CollisionRule rule)
    : inet_(net), rule_(rule) {}

void InterferenceSimAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  (void)view;
  const NodeId n = inet_.node_count();
  const auto un = static_cast<std::size_t>(n);

  // Recompute the interference-model outcome for this round.
  std::vector<int> arrival_count(un, 0);
  std::vector<int> receivable_count(un, 0);
  std::vector<bool> is_sender(un, false);
  for (NodeId u : senders) {
    is_sender[static_cast<std::size_t>(u)] = true;
    ++arrival_count[static_cast<std::size_t>(u)];
    ++receivable_count[static_cast<std::size_t>(u)];
    for (NodeId v : inet_.gi().out_neighbors(u)) {
      ++arrival_count[static_cast<std::size_t>(v)];
      if (inet_.gt().has_edge(u, v)) {
        ++receivable_count[static_cast<std::size_t>(v)];
      }
    }
  }
  // R: nodes that receive an actual message in the interference execution.
  std::vector<bool> receives(un, false);
  for (NodeId v = 0; v < n; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    switch (rule_) {
      case CollisionRule::CR1:
        receives[uv] = arrival_count[uv] == 1 && receivable_count[uv] == 1;
        break;
      case CollisionRule::CR2:
      case CollisionRule::CR3:
      case CollisionRule::CR4:
        // Senders receive their own message; non-senders receive iff exactly
        // one message reached them and it is receivable (CR4 resolves
        // collisions to silence by convention here).
        receives[uv] = is_sender[uv] ||
                       (arrival_count[uv] == 1 && receivable_count[uv] == 1);
        break;
    }
  }
  // Condition (1), strengthened: u suffers a real collision, i.e. at least
  // two messages reach it in the interference model. The appendix states the
  // condition as "some sender is a G_T-neighbor of u", which misses *pure*
  // interference collisions (>= 2 G_I-only arrivals, no G_T arrival): under
  // CR1/CR2 such a node hears collision notification in the interference
  // model, so the simulating adversary must fire those edges too. The
  // appendix's own Case II ("at least two messages reach u in the original
  // graph, and therefore also in the dual graph") assumes exactly this
  // behavior; firing on arrival_count >= 2 realizes it and is verified
  // round-by-round by the Lemma1Equivalence tests.
  for (std::size_t i = 0; i < senders.size(); ++i) {
    const NodeId v = senders[i];  // condition (3): v sends
    for (NodeId u : inet_.gi().out_neighbors(v)) {
      const auto uu = static_cast<std::size_t>(u);
      if (inet_.gt().has_edge(v, u)) continue;   // only G_I-only edges
      if (arrival_count[uu] < 2) continue;       // condition (1), see above
      if (receives[uu]) continue;                // condition (2)
      sink.add(i, u);
    }
  }
}

}  // namespace dualrad
