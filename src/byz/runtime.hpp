#pragma once

#include <cstdint>
#include <vector>

#include "byz/plan.hpp"
#include "core/message.hpp"
#include "core/simulator.hpp"
#include "core/types.hpp"

/// \file runtime.hpp
/// Per-execution Byzantine fault machinery shared by both round engines.
///
/// The engines stay fault-agnostic except for three hook points, all driven
/// through this class so the sparse CSR engine and the dense reference
/// engine apply byte-identical behavior:
///
///  1. `rewrite_senders` — after the round's poll (senders ascending, final):
///     drops the protocol sends of active Byzantine nodes and injects one
///     forged-token message per active forger, reporting the removed/added
///     nodes so the engine can fix its sender flags and work estimates. The
///     same pass records injection and victim provenance (a *victim* is any
///     non-forger that transmits a forged token — under suppressed Byzantine
///     protocol sends, necessarily a correct node relaying what it heard).
///  2. `may_transmit` — the poll-time send check for forged token ids: legal
///     only for the token's forger or a node the token was delivered to
///     (relaying what you heard is protocol-legal; inventing an id is not).
///  3. `note_delivery` — called from the (possibly sharded) delivery phase
///     when a forged-token message is delivered at a node. Writes only
///     per-node state, so concurrent shard workers never race.
///
/// `finalize` folds the provenance into SimResult::forged_tokens — the
/// "did a forged token win" audit dimension.

namespace dualrad::byz {

class ByzRuntime {
 public:
  /// `plan` must be bound to a network with `process_of_node.size()` nodes
  /// and outlive the runtime; `process_of_node` is the execution's proc
  /// mapping (forged messages carry the forger's own process id — locally
  /// authenticated channels).
  ByzRuntime(const ByzantinePlan& plan,
             const std::vector<ProcessId>& process_of_node);

  [[nodiscard]] static bool is_forged(TokenId tok) {
    return tok >= kForgedTokenBase;
  }

  /// Apply the round's Byzantine behaviors to the final ascending `senders`
  /// list (in place, kept ascending). Nodes appended to `removed` lost their
  /// sender status; nodes appended to `added` gained it (a forger that was
  /// already a protocol sender appears in both: its message is replaced).
  void rewrite_senders(Round round, std::vector<NodeId>& senders,
                       std::vector<Message>& sent_msg,
                       std::vector<NodeId>& removed,
                       std::vector<NodeId>& added);

  /// True iff `v` may legally transmit forged token `tok`: it is the
  /// registered forger, or the token was previously delivered to it.
  [[nodiscard]] bool may_transmit(NodeId v, TokenId tok) const;

  /// Record the delivery of forged token `tok` at node `v`. Only per-node
  /// state is written (shard-safe). The token must be registered.
  void note_delivery(TokenId tok, NodeId v);

  /// Per-forged-token provenance, in fault-addition order.
  [[nodiscard]] std::vector<ForgedTokenRecord> finalize() const;

 private:
  struct Slot {
    TokenId token = kNoToken;
    NodeId forger = kInvalidNode;
    Round active_from = 1;
    Round first_injected = kNever;
    std::uint64_t injections = 0;
    NodeId first_victim = kInvalidNode;
    Round first_victim_round = kNever;
    std::uint64_t victim_sends = 0;
  };

  void refresh();
  [[nodiscard]] std::size_t slot_index(TokenId tok) const;  // npos if absent

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const ByzantinePlan* plan_;
  const std::vector<ProcessId>* pids_;
  std::uint64_t synced_version_;
  std::size_t synced_faults_ = 0;
  /// Faults sorted by node — the suppression merge against ascending senders.
  std::vector<ByzFault> by_node_;
  /// Forge slots in fault-addition order; indices are stable (faults are
  /// append-only within one execution), so seen-mask bits never move.
  std::vector<Slot> slots_;
  std::vector<std::pair<TokenId, std::uint32_t>> slot_of_token_;  ///< sorted
  /// Per-node bitmask of forged tokens delivered there (<= 64 forgers,
  /// ByzantinePlan::kMaxForgers). Shard workers write disjoint nodes.
  std::vector<std::uint64_t> seen_mask_;
  std::vector<NodeId> injected_;  ///< per-round scratch
};

}  // namespace dualrad::byz
