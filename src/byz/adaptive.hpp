#pragma once

#include "byz/plan.hpp"
#include "core/adversary.hpp"

/// \file adaptive.hpp
/// Coverage-chasing adaptive Byzantine corruption.
///
/// A decorator adversary that watches the execution through the standard
/// on_round_end coverage-delta hook and spends a corruption budget on nodes
/// the moment the broadcast reaches them — the natural adaptive strategy in
/// the node-fault model: corrupting the frontier maximizes the damage a
/// silent node does (it was about to become a relay) and places forgers
/// exactly where correct neighbors are listening.
///
/// Every corruption goes through ByzantinePlan::try_corrupt, so the grown
/// placement stays f-locally bounded by construction. on_execution_start
/// rolls the plan back to its frozen baseline, which is what lets one plan
/// object be shared across the serial / sharded / reference-engine replays of
/// the equivalence suite: the engines call on_execution_start before they
/// construct their Byzantine runtime, so every replay sees the same baseline
/// and — because the coverage deltas are bit-identical — re-grows the same
/// corruptions in the same order (forged ids depend only on the bind seed
/// and the corrupted node, byz/plan.hpp).
///
/// All radio-model choices (proc mapping, unreliable reach, CR4 resolution)
/// are delegated to the wrapped inner adversary; this class only corrupts.

namespace dualrad::byz {

struct AdaptiveByzOptions {
  /// Corruptions per execution on top of the plan's frozen baseline.
  std::size_t budget = 2;
  ByzBehavior behavior = ByzBehavior::Forge;
  /// Never corrupt before this round (faults activate the round after the
  /// corruption decision, i.e. at view.round + 1 >= min_round).
  Round min_round = 1;
};

class AdaptiveByzAdversary final : public Adversary {
 public:
  /// `inner` handles the radio-model choices and `plan` (bound, frozen)
  /// receives the corruptions; both are borrowed and must outlive this.
  AdaptiveByzAdversary(Adversary& inner, ByzantinePlan& plan,
                       const AdaptiveByzOptions& options);

  [[nodiscard]] std::vector<ProcessId> assign_processes(
      const DualGraph& net) override;
  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;
  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;
  void on_execution_start(const DualGraph& net) override;
  void on_round_end(const AdversaryView& view) override;

  /// Corruptions placed so far this execution (on top of the baseline).
  [[nodiscard]] std::size_t corrupted() const { return corrupted_; }

 private:
  Adversary* inner_;
  ByzantinePlan* plan_;
  AdaptiveByzOptions options_;
  std::size_t corrupted_ = 0;
};

}  // namespace dualrad::byz
