#pragma once

#include <vector>

#include "core/process.hpp"

/// \file cpa.hpp
/// Certified Propagation (CPA) — the classical receiver rule for the
/// f-locally-bounded Byzantine node-fault model (byz/plan.hpp), plus the
/// deliberately uncertified relay it is contrasted against.
///
/// A CPA process *accepts* a token only when it is certain the token is
/// genuine:
///   * directly from the environment (the process is a token source), or
///   * directly from a trusted origin (the scenario configures the source
///     process ids — channels are locally authenticated, so a message whose
///     origin is a source pid really was transmitted by that source; this is
///     the "source-adjacent nodes accept directly" case), or
///   * after hearing it from >= f + 1 *distinct* origins. Under an
///     f-locally-bounded placement at most f of a node's in-neighbors are
///     Byzantine, so f + 1 distinct confirmations include a correct one.
/// Only accepted tokens are ever relayed, which is what makes acceptance
/// inductive: a correct node's confirmation is itself certified.
///
/// The relay schedule is randomized and duty-cycled exactly like the decay
/// baseline's maintenance mode (algorithms/decay.hpp): a coin with
/// probability relay_p per on-air round, an initial active window counted
/// from the process's first acceptance, then periodic beacon rounds. The
/// coin and the duty window depend only on (seed, round, first-acceptance
/// round) — NOT on which tokens are accepted — so next_send_round can be
/// answered exactly and memoized, and later acceptances never perturb the
/// schedule.
///
/// UncertifiedRelayProcess is the foil: it adopts the first token it hears
/// — whatever the origin — and relays it on the same schedule. Under a
/// forging fault it demonstrably lets the forged token win (the node-fault
/// audit dimension); CPA under a valid placement never does.

namespace dualrad::byz {

struct CpaOptions {
  /// The placement bound the receiver defends against: acceptance needs
  /// f + 1 distinct confirming origins.
  std::int32_t f = 1;
  /// Process ids whose messages are accepted directly (the token sources).
  std::vector<ProcessId> trusted_origins{};
  /// Per-round transmission probability while on air (must be > 0).
  double relay_p = 0.5;
  /// Rounds of continuous relaying after the first acceptance; 0 means the
  /// process stays on air forever (small-graph / unit-test mode).
  Round active_rounds = 0;
  /// With a bounded window: beacon every `rebroadcast_period` rounds after
  /// it, counted from the first acceptance (staggered across nodes). 0 goes
  /// permanently quiet when the window ends.
  Round rebroadcast_period = 0;
};

struct UncertifiedRelayOptions {
  double relay_p = 0.5;
  Round active_rounds = 0;
  Round rebroadcast_period = 0;
};

[[nodiscard]] ProcessFactory make_cpa_factory(NodeId n,
                                              const CpaOptions& options = {});

[[nodiscard]] ProcessFactory make_uncertified_relay_factory(
    NodeId n, const UncertifiedRelayOptions& options = {});

}  // namespace dualrad::byz
