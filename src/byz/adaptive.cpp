#include "byz/adaptive.hpp"

namespace dualrad::byz {

AdaptiveByzAdversary::AdaptiveByzAdversary(Adversary& inner,
                                           ByzantinePlan& plan,
                                           const AdaptiveByzOptions& options)
    : inner_(&inner), plan_(&plan), options_(options) {
  DUALRAD_REQUIRE(plan.bound(), "adaptive corruption needs a bound plan");
  DUALRAD_REQUIRE(options.min_round >= 1, "min_round must be >= 1");
}

std::vector<ProcessId> AdaptiveByzAdversary::assign_processes(
    const DualGraph& net) {
  return inner_->assign_processes(net);
}

void AdaptiveByzAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  inner_->choose_unreliable_reach(view, senders, sink);
}

Reception AdaptiveByzAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  return inner_->resolve_cr4(view, node, arrivals);
}

void AdaptiveByzAdversary::on_execution_start(const DualGraph& net) {
  // Roll back the previous execution's corruptions before the engine builds
  // its Byzantine runtime, so replays (other engine, other thread count)
  // start from the identical frozen baseline.
  plan_->reset_adaptive();
  corrupted_ = 0;
  inner_->on_execution_start(net);
}

void AdaptiveByzAdversary::on_round_end(const AdversaryView& view) {
  if (view.round + 1 >= options_.min_round) {
    // Chase the coverage frontier: corrupt freshly-covered nodes, in the
    // deltas' ascending node order (bit-identical across engines), skipping
    // nodes whose corruption would break the f-locally-bounded invariant.
    for (const NodeId v : view.newly_covered) {
      if (corrupted_ >= options_.budget) break;
      if (plan_->try_corrupt(v, options_.behavior,
                             /*active_from=*/view.round + 1)) {
        ++corrupted_;
      }
    }
  }
  inner_->on_round_end(view);
}

}  // namespace dualrad::byz
