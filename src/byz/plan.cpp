#include "byz/plan.hpp"

#include <algorithm>
#include <string>

#include "core/rng.hpp"

namespace dualrad::byz {

ByzantinePlan::ByzantinePlan(int f) : f_(f) {
  DUALRAD_REQUIRE(f >= 1, "Byzantine plan needs f >= 1");
}

void ByzantinePlan::add(NodeId node, ByzBehavior behavior, Round active_from) {
  DUALRAD_REQUIRE(!bound(), "add() is for static faults; use try_corrupt "
                            "after bind");
  DUALRAD_REQUIRE(active_from >= 1, "fault activation round must be >= 1");
  faults_.push_back(ByzFault{node, behavior, active_from, kNoToken});
}

TokenId ByzantinePlan::assign_forged_token(NodeId node) {
  // Deterministic fresh id: hash the bind seed with the forger's node, probe
  // within the reserved band until unused. The probe sequence depends only
  // on (seed, node, ids already taken), and corruptions happen in the same
  // order in every engine, so the assignment is replay-stable.
  std::uint64_t h = mix_seed(id_seed_, static_cast<std::uint64_t>(node));
  for (;;) {
    const auto offset = static_cast<TokenId>(h & 0xFFFFF);
    const TokenId tok = kForgedTokenBase + offset;
    if (used_tokens_.insert(tok).second) return tok;
    h = splitmix64(h);
  }
}

void ByzantinePlan::commit(ByzFault fault, std::span<const NodeId> g_row) {
  byz_flag_[static_cast<std::size_t>(fault.node)] = 1;
  for (const NodeId w : g_row) ++byz_in_[static_cast<std::size_t>(w)];
  if (fault.behavior == ByzBehavior::Forge) {
    fault.forged_token = assign_forged_token(fault.node);
    ++forge_count_;
  }
  faults_.push_back(fault);
  ++version_;
}

void ByzantinePlan::bind(const DualGraph& net,
                         const std::vector<NodeId>& token_sources,
                         std::uint64_t seed) {
  DUALRAD_REQUIRE(!bound(), "plan is already bound");
  n_ = net.node_count();
  net_ = &net;
  id_seed_ = mix_seed(seed, 0xB12F);
  const auto un = static_cast<std::size_t>(n_);
  byz_flag_.assign(un, 0);
  source_flag_.assign(un, 0);
  byz_in_.assign(un, 0);
  if (token_sources.empty()) {
    source_flag_[static_cast<std::size_t>(net.source())] = 1;
  } else {
    for (const NodeId s : token_sources) {
      DUALRAD_REQUIRE(s >= 0 && s < n_, "token source out of range");
      source_flag_[static_cast<std::size_t>(s)] = 1;
    }
  }

  // Commit every static fault, then validate the final state: bind checks
  // the *placement as a whole*, so mutually-adjacent static faults are fine
  // as long as every correct node ends within the f bound.
  std::vector<ByzFault> pending;
  pending.swap(faults_);
  const CsrGraph& g = net.g_csr();
  for (const ByzFault& fault : pending) {
    DUALRAD_REQUIRE(fault.node >= 0 && fault.node < n_,
                    "Byzantine fault node out of range");
    DUALRAD_REQUIRE(!is_byzantine(fault.node),
                    "duplicate Byzantine fault at node " +
                        std::to_string(fault.node));
    DUALRAD_REQUIRE(!source_flag_[static_cast<std::size_t>(fault.node)],
                    "token source node " + std::to_string(fault.node) +
                        " cannot be Byzantine");
    DUALRAD_REQUIRE(fault.behavior != ByzBehavior::Forge ||
                        forge_count_ < kMaxForgers,
                    "too many forgers (cap " + std::to_string(kMaxForgers) +
                        ")");
    commit(fault, g.row(fault.node));
  }
  for (NodeId v = 0; v < n_; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    if (byz_flag_[uv]) continue;
    DUALRAD_REQUIRE(
        byz_in_[uv] <= f_,
        "placement is not " + std::to_string(f_) + "-locally bounded: node " +
            std::to_string(v) + " has " + std::to_string(byz_in_[uv]) +
            " Byzantine in-neighbors");
  }
  ++version_;
  freeze();
}

void ByzantinePlan::freeze() { baseline_count_ = faults_.size(); }

void ByzantinePlan::reset_adaptive() {
  if (faults_.size() == baseline_count_) return;
  const CsrGraph& g = net_->g_csr();
  for (std::size_t i = faults_.size(); i > baseline_count_; --i) {
    const ByzFault& fault = faults_[i - 1];
    byz_flag_[static_cast<std::size_t>(fault.node)] = 0;
    for (const NodeId w : g.row(fault.node)) {
      --byz_in_[static_cast<std::size_t>(w)];
    }
    if (fault.behavior == ByzBehavior::Forge) {
      used_tokens_.erase(fault.forged_token);
      --forge_count_;
    }
  }
  faults_.resize(baseline_count_);
  ++version_;
}

bool ByzantinePlan::try_corrupt(NodeId node, ByzBehavior behavior,
                                Round active_from) {
  DUALRAD_REQUIRE(bound(), "try_corrupt needs a bound plan");
  DUALRAD_REQUIRE(active_from >= 1, "fault activation round must be >= 1");
  if (node < 0 || node >= n_) return false;
  const auto uv = static_cast<std::size_t>(node);
  if (byz_flag_[uv] || source_flag_[uv]) return false;
  if (behavior == ByzBehavior::Forge && forge_count_ >= kMaxForgers) {
    return false;
  }
  // Incremental f-locally-bounded check: corrupting `node` raises the
  // Byzantine in-degree of each of its correct G-out-neighbors by one
  // (its own bound stops mattering — it is no longer correct).
  const auto row = net_->g_csr().row(node);
  for (const NodeId w : row) {
    const auto uw = static_cast<std::size_t>(w);
    if (!byz_flag_[uw] && byz_in_[uw] + 1 > f_) return false;
  }
  commit(ByzFault{node, behavior, active_from, kNoToken}, row);
  return true;
}

ByzantinePlan make_random_plan(const DualGraph& net, int f, std::size_t count,
                               ByzBehavior behavior,
                               const std::vector<NodeId>& token_sources,
                               std::uint64_t seed) {
  ByzantinePlan plan(f);
  plan.bind(net, token_sources, seed);
  StreamRng rng(mix_seed(seed, 0x9F));
  const auto n = static_cast<std::uint64_t>(net.node_count());
  std::size_t placed = 0;
  // Rejection sampling with a bounded budget: graphs whose every remaining
  // node would break the f bound (or the forger cap) simply yield a smaller
  // placement, which is still a valid plan.
  for (std::size_t attempt = 0; placed < count && attempt < 20 * count + 64;
       ++attempt) {
    const auto v = static_cast<NodeId>(rng.below(n));
    if (plan.try_corrupt(v, behavior, /*active_from=*/1)) ++placed;
  }
  plan.freeze();
  return plan;
}

}  // namespace dualrad::byz
