#include "byz/byz_scenarios.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "adversary/basic_adversaries.hpp"
#include "byz/adaptive.hpp"
#include "byz/cpa.hpp"
#include "byz/plan.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"

namespace dualrad::byz {

namespace {

using campaign::AdversaryFactory;
using campaign::AlgorithmBuilder;
using campaign::NetworkBuilder;
using campaign::Scenario;

// The same sparse scale topologies as the scale/* grid, so byz/* numbers are
// directly comparable to the fault-free engine-scaling rows.

[[nodiscard]] NetworkBuilder scale_layered(NodeId layers, NodeId width) {
  return [layers, width] {
    return duals::layered_sparse({.layers = layers,
                                  .width = width,
                                  .fwd_degree = 3,
                                  .unreliable_degree = 2,
                                  .seed = 17});
  };
}

[[nodiscard]] NetworkBuilder scale_grayzone(NodeId n) {
  return [n] {
    return duals::gray_zone_grid(
        {.n = n, .mean_degree = 12.0, .gray_factor = 1.5, .seed = 17});
  };
}

// Relay schedules mirror the scale grid's duty-cycled decay: a bounded
// active window after first acceptance/adoption, then sparse beacons, so
// steady-state rounds stay cheap at 10k-100k nodes.

[[nodiscard]] AlgorithmBuilder cpa(int f) {
  return [f](const DualGraph& net) {
    // Identity proc mapping (the byz/* adversaries keep the default), so the
    // source's process id equals the source node: messages with that origin
    // really come from the source — the "source-adjacent accept" rule.
    return make_cpa_factory(
        net.node_count(),
        {.f = f,
         .trusted_origins = {static_cast<ProcessId>(net.source())},
         .relay_p = 0.5,
         .active_rounds = 64,
         .rebroadcast_period = 16});
  };
}

[[nodiscard]] AlgorithmBuilder uncertified_relay() {
  return [](const DualGraph& net) {
    return make_uncertified_relay_factory(net.node_count(),
                                          {.relay_p = 0.5,
                                           .active_rounds = 64,
                                           .rebroadcast_period = 16});
  };
}

/// The byz trial body: draw a fresh f-locally-bounded placement from the
/// trial's seed stream, run the execution with the plan wired into the
/// engine, optionally letting an adaptive adversary grow the placement from
/// the coverage frontier. Pure in its arguments (the placement depends only
/// on config.seed), so campaign runs stay bit-identical across workers,
/// engines, and threads-per-trial.
[[nodiscard]] campaign::TrialRunner byz_runner(int f, std::size_t count,
                                               ByzBehavior behavior,
                                               std::size_t adaptive_budget) {
  return [f, count, behavior, adaptive_budget](
             const DualGraph& net, const ProcessFactory& factory,
             Adversary& adversary, const SimConfig& config) {
    ByzantinePlan plan =
        make_random_plan(net, f, count, behavior, config.token_sources,
                         mix_seed(config.seed, 0xB12));
    SimConfig cfg = config;
    cfg.byzantine = &plan;
    if (adaptive_budget > 0) {
      AdaptiveByzAdversary adaptive(
          adversary, plan, {.budget = adaptive_budget, .behavior = behavior});
      return run_broadcast(net, factory, adaptive, cfg);
    }
    return run_broadcast(net, factory, adversary, cfg);
  };
}

[[nodiscard]] const char* behavior_label(ByzBehavior behavior,
                                         std::size_t adaptive_budget) {
  if (adaptive_budget > 0) return "adaptive";
  return behavior == ByzBehavior::Silent ? "silent" : "forge";
}

}  // namespace

void register_byz_scenarios(campaign::ScenarioRegistry& registry) {
  struct ByzPoint {
    const char* family;   // "layered" / "grayzone"
    const char* size;     // "1k" / "10k" / "100k"
    NodeId n;
    NetworkBuilder network;
    std::size_t trials;
    Round max_rounds;
    bool slow;
  };
  const ByzPoint points[] = {
      {"layered", "1k", 1'000, scale_layered(50, 20), 3, 20'000, false},
      {"grayzone", "1k", 1'000, scale_grayzone(1'000), 3, 20'000, false},
      {"layered", "10k", 10'000, scale_layered(125, 80), 2, 20'000, false},
      {"grayzone", "10k", 10'000, scale_grayzone(10'000), 2, 20'000, false},
      {"layered", "100k", 100'000, scale_layered(250, 400), 1, 40'000, true},
      {"grayzone", "100k", 100'000, scale_grayzone(100'000), 1, 40'000, true},
  };
  struct ByzArm {
    const char* family;
    const char* size;
    bool use_cpa;  // false: the uncertified "decay"-style relay
    int f;
    ByzBehavior behavior;
    std::size_t adaptive_budget;  // > 0 turns on frontier-chasing corruption
  };
  // The grid ISSUE.md asks for: layered/grayzone x f in {1,2} x silent/forge
  // x CPA/uncertified, with 10k arms for CI and 100k arms tagged slow.
  const ByzArm arms[] = {
      {"layered", "1k", true, 1, ByzBehavior::Silent, 0},
      {"layered", "1k", true, 1, ByzBehavior::Forge, 0},
      {"layered", "1k", false, 1, ByzBehavior::Silent, 0},
      {"layered", "1k", false, 1, ByzBehavior::Forge, 0},
      {"layered", "1k", true, 2, ByzBehavior::Forge, 0},
      {"layered", "1k", false, 2, ByzBehavior::Forge, 0},
      {"grayzone", "1k", true, 1, ByzBehavior::Forge, 0},
      {"grayzone", "1k", false, 1, ByzBehavior::Forge, 0},
      {"grayzone", "1k", true, 2, ByzBehavior::Silent, 0},
      {"layered", "10k", true, 1, ByzBehavior::Forge, 0},
      {"layered", "10k", false, 1, ByzBehavior::Forge, 0},
      {"layered", "10k", true, 1, ByzBehavior::Forge, 4},
      {"grayzone", "10k", true, 2, ByzBehavior::Forge, 0},
      {"layered", "100k", true, 1, ByzBehavior::Forge, 0},
      {"grayzone", "100k", true, 2, ByzBehavior::Silent, 0},
  };

  for (const ByzArm& arm : arms) {
    const ByzPoint* point = nullptr;
    for (const ByzPoint& p : points) {
      if (std::string(p.family) == arm.family &&
          std::string(p.size) == arm.size) {
        point = &p;
      }
    }
    // Placement size scales with n, capped by the plan's forger budget.
    const std::size_t count = std::clamp<std::size_t>(
        static_cast<std::size_t>(point->n) / 200, 4, ByzantinePlan::kMaxForgers);

    Scenario s;
    s.name = std::string("byz/") + arm.family + "-" + arm.size + "/" +
             (arm.use_cpa ? "cpa" : "decay") + "/f=" + std::to_string(arm.f) +
             "-" + behavior_label(arm.behavior, arm.adaptive_budget);
    s.description =
        std::string(arm.use_cpa
                        ? "Certified propagation (accept on f+1 distinct "
                          "confirmations)"
                        : "Uncertified decay-style relay (adopts the first "
                          "token heard)") +
        " under " + std::to_string(arm.f) + "-locally-bounded " +
        (arm.adaptive_budget > 0
             ? "adaptive frontier-chasing corruption"
             : (arm.behavior == ByzBehavior::Silent ? "silent node faults"
                                                    : "token-forging faults")) +
        " on the sparse " + arm.family + "-" + arm.size + " family";
    s.tags = {"byz", "randomized", "adversarial"};
    if (point->slow) s.tags.push_back("slow");
    s.network = point->network;
    s.algorithm = arm.use_cpa ? cpa(arm.f) : uncertified_relay();
    s.adversary =
        std::string(arm.family) == "grayzone"
            ? campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.25)
            : campaign::make_adversary_factory<BenignAdversary>();
    s.runner = byz_runner(arm.f, count, arm.behavior, arm.adaptive_budget);
    // CR3, like the scale grid: collisions are silent, the classic
    // no-collision-detection radio assumption.
    s.rule = CollisionRule::CR3;
    s.max_rounds = point->max_rounds;
    s.trials = point->trials;
    registry.add(std::move(s));
  }
}

}  // namespace dualrad::byz
