#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/dual_graph.hpp"

/// \file plan.hpp
/// f-locally-bounded Byzantine node-fault placement.
///
/// The node-fault model (Bonomi-Farina-Tixeuil; Maurer-Tixeuil, PAPERS.md):
/// an adversary corrupts a set of nodes. A corrupted ("Byzantine") node stops
/// following its process's protocol — it either stays *silent* (its sends are
/// dropped) or *forges* (it transmits a message carrying a fresh token id the
/// environment never injected, every round it is active). The placement is
/// *f-locally bounded*: every correct node has at most f Byzantine
/// in-neighbors in the reliable graph G, the classical condition under which
/// the certified-propagation rule (byz/cpa.hpp) tolerates the faults.
///
/// Channels are locally authenticated (the standard CPA assumption): a
/// Byzantine node can forge *content* but not its *identity*, so forged
/// messages carry the forger's own process id as origin.
///
/// A ByzantinePlan is built in two phases. Static faults are `add`ed and then
/// `bind`-validated against a concrete network (range, distinctness,
/// disjointness from token sources, and the final f-locally-bounded state).
/// After binding, `try_corrupt` grows the placement *incrementally* — each
/// corruption is accepted only if it keeps every correct node within the f
/// bound — which is the primitive adaptive adversaries (byz/adaptive.hpp)
/// drive from the `on_round_end` coverage-delta hook. `freeze` snapshots the
/// current placement as the baseline that `reset_adaptive` restores, so one
/// plan object can be shared by repeated executions (serial / sharded /
/// reference engine replays) with adaptive corruptions rolled back between
/// runs.
///
/// Forged token ids live in a reserved band starting at kForgedTokenBase so
/// they can never collide with legitimate ids 1..k (enforced on the other
/// side by validate_token_sources, core/simulator.hpp). Each forger's id is
/// drawn deterministically from the plan's bind seed, so executions are
/// bit-identical across engines and thread counts.

namespace dualrad::byz {

/// First token id of the forged band. Legitimate multi-message ids are
/// 1..k with k < kForgedTokenBase (validate_token_sources enforces it);
/// every forged id is >= kForgedTokenBase, so `token >= kForgedTokenBase`
/// is the engine's forgery test.
inline constexpr TokenId kForgedTokenBase = TokenId{1} << 20;

enum class ByzBehavior : std::uint8_t {
  Silent,  ///< drops every protocol send of the corrupted node
  Forge,   ///< additionally injects a forged-token message every active round
};

struct ByzFault {
  NodeId node = kInvalidNode;
  ByzBehavior behavior = ByzBehavior::Silent;
  /// First round the fault is active; protocol sends before it pass through.
  Round active_from = 1;
  /// Forged token id (Forge behavior only), assigned at bind/corrupt time.
  TokenId forged_token = kNoToken;

  friend bool operator==(const ByzFault&, const ByzFault&) = default;
};

class ByzantinePlan {
 public:
  /// Forgers per plan are capped so the engines can track forged-token
  /// receptions in one 64-bit mask per node.
  static constexpr std::size_t kMaxForgers = 64;

  explicit ByzantinePlan(int f = 1);

  [[nodiscard]] int f() const { return f_; }
  [[nodiscard]] bool bound() const { return n_ != 0; }
  [[nodiscard]] NodeId node_count() const { return n_; }

  /// Declare a static fault (before bind). Validation happens at bind.
  void add(NodeId node, ByzBehavior behavior, Round active_from = 1);

  /// Validate the static faults against `net` and commit them: every fault
  /// node must be in range, distinct, and not a token source (the effective
  /// source set: `token_sources`, or {net.source()} when empty); the final
  /// placement must leave every correct node with at most f Byzantine
  /// in-neighbors in G. Forge faults receive their forged token ids here,
  /// derived from `seed`. Throws std::invalid_argument on violation.
  /// Implies freeze(): the static faults become the adaptive baseline.
  void bind(const DualGraph& net, const std::vector<NodeId>& token_sources,
            std::uint64_t seed);

  /// Snapshot the current placement as the baseline reset_adaptive restores.
  void freeze();

  /// Roll adaptive corruptions back to the last freeze(). Idempotent.
  void reset_adaptive();

  /// Incrementally corrupt `node` (requires bound()). Returns false — with
  /// no state change — when the corruption is inadmissible: node out of
  /// range, already Byzantine, a token source, would push some correct
  /// node past the f bound, or (Forge) the forger cap is reached.
  bool try_corrupt(NodeId node, ByzBehavior behavior, Round active_from);

  /// All faults, in addition order (append-only between resets — the order
  /// the engines' runtime syncs slots in).
  [[nodiscard]] const std::vector<ByzFault>& faults() const { return faults_; }

  [[nodiscard]] bool is_byzantine(NodeId v) const {
    return bound() && byz_flag_[static_cast<std::size_t>(v)] != 0;
  }

  /// Bumped by bind / try_corrupt / reset_adaptive; the engines' runtime
  /// re-syncs when it changes.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  [[nodiscard]] TokenId assign_forged_token(NodeId node);
  void commit(ByzFault fault, std::span<const NodeId> g_row);

  int f_ = 1;
  NodeId n_ = 0;  ///< 0 until bound
  const DualGraph* net_ = nullptr;
  std::vector<ByzFault> faults_;
  std::vector<std::uint8_t> byz_flag_;    ///< per node, after bind
  std::vector<std::uint8_t> source_flag_; ///< effective token sources
  std::vector<std::int32_t> byz_in_;      ///< Byzantine in-degree in G
  std::set<TokenId> used_tokens_;
  std::size_t forge_count_ = 0;
  std::size_t baseline_count_ = 0;  ///< faults_ prefix restored by reset
  std::uint64_t id_seed_ = 0;
  std::uint64_t version_ = 0;
};

/// Random f-locally-bounded placement: bind an empty plan, then draw nodes
/// from a seeded stream and try_corrupt each until `count` faults are placed
/// (or the attempt budget runs out — dense graphs may not admit `count`
/// admissible faults). The result is frozen, so reset_adaptive keeps the
/// random placement. Deterministic in (net, f, count, behavior, seed).
[[nodiscard]] ByzantinePlan make_random_plan(
    const DualGraph& net, int f, std::size_t count, ByzBehavior behavior,
    const std::vector<NodeId>& token_sources, std::uint64_t seed);

}  // namespace dualrad::byz
