#include "byz/cpa.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "byz/plan.hpp"
#include "core/rng.hpp"

namespace dualrad::byz {

namespace {

/// The shared relay schedule: a relay_p coin per on-air round, on air from
/// the round after `start` through an initial window of `active_rounds`,
/// then one beacon round per `rebroadcast_period` (counted from `start`, so
/// nodes beacon staggered). Pure in (rng, start, round) — the scan below is
/// what makes next_send_round exact.
struct RelaySchedule {
  double relay_p = 0.5;
  Round active_rounds = 0;
  Round rebroadcast_period = 0;

  [[nodiscard]] bool on_air(Round start, Round round) const {
    if (start == kNever || round <= start) return false;
    if (active_rounds <= 0) return true;
    const Round index = round - start - 1;
    if (index < active_rounds) return true;
    return rebroadcast_period > 0 && index % rebroadcast_period == 0;
  }

  /// First on-air round at or after `round`; kNever if permanently quiet.
  [[nodiscard]] Round next_on_air(Round start, Round round) const {
    round = std::max(round, start + 1);
    if (on_air(start, round)) return round;
    if (rebroadcast_period <= 0) return kNever;
    const Round index = round - start - 1;
    const Round next_index =
        ((index + rebroadcast_period - 1) / rebroadcast_period) *
        rebroadcast_period;
    return start + next_index + 1;
  }

  [[nodiscard]] bool coin(const CounterRng& rng, Round round) const {
    return rng.bernoulli(relay_p, round, /*salt=*/0);
  }

  /// First round >= `from` whose coin fires while on air. Terminates in
  /// O(1/relay_p) expected probes (relay_p > 0 is required by the factory).
  [[nodiscard]] Round scan_for_send(const CounterRng& rng, Round start,
                                    Round from) const {
    for (Round r = next_on_air(start, from); r != kNever;
         r = next_on_air(start, r + 1)) {
      if (coin(rng, r)) return r;
    }
    return kNever;
  }
};

class CpaProcess final : public Process {
 public:
  CpaProcess(ProcessId id, const CpaOptions& options, std::uint64_t seed)
      : Process(id),
        f_(options.f),
        trusted_(options.trusted_origins),
        schedule_{options.relay_p, options.active_rounds,
                  options.rebroadcast_period},
        rng_(seed) {
    std::sort(trusted_.begin(), trusted_.end());
  }
  CpaProcess(const CpaProcess&) = default;

  void on_activate(Round round, const std::optional<Message>& initial) override {
    if (initial) learn(round, *initial);
  }

  [[nodiscard]] Action next_action(Round round) const override {
    if (accepted_.empty() || !schedule_.on_air(accept_start_, round)) {
      return Action::silent();
    }
    if (!schedule_.coin(rng_, round)) return Action::silent();
    // Which accepted token to relay is drawn independently of the send coin
    // (salt 1), so growing the accepted set never shifts the send schedule.
    const auto pick = static_cast<std::size_t>(
        rng_.below(accepted_.size(), round, /*salt=*/1));
    return Action::transmit(Message{accepted_[pick], /*origin=*/id(),
                                    /*round_tag=*/round, /*payload=*/0});
  }

  void on_receive(Round round, const Reception& reception) override {
    if (reception.is_message()) learn(round, *reception.message);
  }

  [[nodiscard]] Round next_send_round(Round from) const override {
    if (accepted_.empty()) return kNever;
    from = std::max(from, accept_start_ + 1);
    if (memo_next_ != kUnplanned && from >= memo_from_ &&
        (memo_next_ == kNever || from <= memo_next_)) {
      return memo_next_;
    }
    memo_from_ = from;
    memo_next_ = schedule_.scan_for_send(rng_, accept_start_, from);
    return memo_next_;
  }

  /// State changes only on message receptions; metrics count acceptances.
  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<CpaProcess>(*this);
  }

  [[nodiscard]] std::vector<ProcessMetric> final_metrics() const override {
    return {{"cpa_accepted", static_cast<double>(accepted_.size())},
            {"cpa_forged", static_cast<double>(forged_accepts_)}};
  }

 private:
  static constexpr Round kUnplanned = -2;

  [[nodiscard]] bool has_accepted(TokenId tok) const {
    return std::binary_search(accepted_.begin(), accepted_.end(), tok);
  }

  void learn(Round round, const Message& m) {
    if (m.token == kNoToken || has_accepted(m.token)) return;
    const bool certified =
        m.origin == kInvalidProcess ||  // environment injection
        std::binary_search(trusted_.begin(), trusted_.end(), m.origin);
    if (certified) {
      accept(round, m.token);
      return;
    }
    // Count distinct confirming origins; channels are locally authenticated,
    // so distinct origins are distinct in-neighbors.
    const auto it = std::lower_bound(
        pending_.begin(), pending_.end(), m.token,
        [](const auto& e, TokenId t) { return e.first < t; });
    if (it == pending_.end() || it->first != m.token) {
      pending_.insert(it, {m.token, {m.origin}});
      return;
    }
    std::vector<ProcessId>& origins = it->second;
    const auto pos = std::lower_bound(origins.begin(), origins.end(), m.origin);
    if (pos != origins.end() && *pos == m.origin) return;
    origins.insert(pos, m.origin);
    if (static_cast<std::int32_t>(origins.size()) >= f_ + 1) {
      accept(round, m.token);
    }
  }

  void accept(Round round, TokenId tok) {
    if (accepted_.empty()) {
      accept_start_ = round;
      memo_next_ = kUnplanned;  // the schedule's origin is now fixed
    }
    accepted_.insert(
        std::lower_bound(accepted_.begin(), accepted_.end(), tok), tok);
    if (tok >= kForgedTokenBase) ++forged_accepts_;
    const auto it = std::lower_bound(
        pending_.begin(), pending_.end(), tok,
        [](const auto& e, TokenId t) { return e.first < t; });
    if (it != pending_.end() && it->first == tok) pending_.erase(it);
  }

  std::int32_t f_;
  std::vector<ProcessId> trusted_;  ///< sorted
  RelaySchedule schedule_;
  CounterRng rng_;
  std::vector<TokenId> accepted_;  ///< sorted
  /// Per unaccepted token: the distinct origins heard so far (sorted).
  std::vector<std::pair<TokenId, std::vector<ProcessId>>> pending_;
  Round accept_start_ = kNever;  ///< round of the first acceptance
  std::uint64_t forged_accepts_ = 0;
  mutable Round memo_from_ = 0;
  mutable Round memo_next_ = kUnplanned;
};

class UncertifiedRelayProcess final : public Process {
 public:
  UncertifiedRelayProcess(ProcessId id, const UncertifiedRelayOptions& options,
                          std::uint64_t seed)
      : Process(id),
        schedule_{options.relay_p, options.active_rounds,
                  options.rebroadcast_period},
        rng_(seed) {}
  UncertifiedRelayProcess(const UncertifiedRelayProcess&) = default;

  void on_activate(Round round, const std::optional<Message>& initial) override {
    if (initial) learn(round, *initial);
  }

  [[nodiscard]] Action next_action(Round round) const override {
    if (token_ == kNoToken || !schedule_.on_air(adopt_round_, round) ||
        !schedule_.coin(rng_, round)) {
      return Action::silent();
    }
    return Action::transmit(
        Message{token_, /*origin=*/id(), /*round_tag=*/round, /*payload=*/0});
  }

  void on_receive(Round round, const Reception& reception) override {
    if (reception.is_message()) learn(round, *reception.message);
  }

  [[nodiscard]] Round next_send_round(Round from) const override {
    if (token_ == kNoToken) return kNever;
    from = std::max(from, adopt_round_ + 1);
    if (memo_next_ != kUnplanned && from >= memo_from_ &&
        (memo_next_ == kNever || from <= memo_next_)) {
      return memo_next_;
    }
    memo_from_ = from;
    memo_next_ = schedule_.scan_for_send(rng_, adopt_round_, from);
    return memo_next_;
  }

  [[nodiscard]] bool silence_transparent() const override { return true; }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<UncertifiedRelayProcess>(*this);
  }

  [[nodiscard]] std::vector<ProcessMetric> final_metrics() const override {
    return {{"relay_token", static_cast<double>(token_)}};
  }

 private:
  static constexpr Round kUnplanned = -2;

  /// Adopt the first token heard, no questions asked — the vulnerability
  /// CPA exists to close.
  void learn(Round round, const Message& m) {
    if (token_ != kNoToken || m.token == kNoToken) return;
    token_ = m.token;
    adopt_round_ = round;
    memo_next_ = kUnplanned;
  }

  RelaySchedule schedule_;
  CounterRng rng_;
  TokenId token_ = kNoToken;
  Round adopt_round_ = kNever;
  mutable Round memo_from_ = 0;
  mutable Round memo_next_ = kUnplanned;
};

}  // namespace

ProcessFactory make_cpa_factory(NodeId n, const CpaOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "CPA needs n >= 2");
  DUALRAD_REQUIRE(options.f >= 1, "CPA needs f >= 1");
  DUALRAD_REQUIRE(options.relay_p > 0.0 && options.relay_p <= 1.0,
                  "CPA relay probability must be in (0, 1]");
  return [options, n](ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<CpaProcess>(id, options, seed);
  };
}

ProcessFactory make_uncertified_relay_factory(
    NodeId n, const UncertifiedRelayOptions& options) {
  DUALRAD_REQUIRE(n >= 2, "relay needs n >= 2");
  DUALRAD_REQUIRE(options.relay_p > 0.0 && options.relay_p <= 1.0,
                  "relay probability must be in (0, 1]");
  return [options, n](ProcessId id, NodeId n_arg, std::uint64_t seed) {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<UncertifiedRelayProcess>(id, options, seed);
  };
}

}  // namespace dualrad::byz
