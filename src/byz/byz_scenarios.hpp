#pragma once

#include "campaign/registry.hpp"

/// \file byz_scenarios.hpp
/// The byz/* campaign family: Byzantine node faults (byz/plan.hpp) against
/// the certified-propagation receiver and its uncertified foil (byz/cpa.hpp)
/// on the sparse scale topologies, 1k-100k nodes.

namespace dualrad::byz {

void register_byz_scenarios(campaign::ScenarioRegistry& registry);

}  // namespace dualrad::byz
