#include "byz/runtime.hpp"

#include <algorithm>

namespace dualrad::byz {

ByzRuntime::ByzRuntime(const ByzantinePlan& plan,
                       const std::vector<ProcessId>& process_of_node)
    : plan_(&plan),
      pids_(&process_of_node),
      synced_version_(~std::uint64_t{0}) {
  DUALRAD_REQUIRE(plan.bound(), "Byzantine plan must be bound before a run");
  DUALRAD_REQUIRE(
      static_cast<std::size_t>(plan.node_count()) == process_of_node.size(),
      "Byzantine plan is bound to a different network size");
  seen_mask_.assign(process_of_node.size(), 0);
  refresh();
}

void ByzRuntime::refresh() {
  if (plan_->version() == synced_version_) return;
  const std::vector<ByzFault>& faults = plan_->faults();
  // Within one execution the plan only grows (adaptive corruption); shrinks
  // happen through reset_adaptive between runs, before this runtime exists.
  DUALRAD_CHECK(faults.size() >= synced_faults_,
                "Byzantine plan shrank mid-execution");
  for (std::size_t i = synced_faults_; i < faults.size(); ++i) {
    if (faults[i].behavior != ByzBehavior::Forge) continue;
    Slot slot;
    slot.token = faults[i].forged_token;
    slot.forger = faults[i].node;
    slot.active_from = faults[i].active_from;
    DUALRAD_CHECK(slots_.size() < ByzantinePlan::kMaxForgers,
                  "forger count exceeds the seen-mask width");
    slot_of_token_.emplace_back(slot.token,
                                static_cast<std::uint32_t>(slots_.size()));
    slots_.push_back(slot);
  }
  std::sort(slot_of_token_.begin(), slot_of_token_.end());
  by_node_.assign(faults.begin(), faults.end());
  std::sort(by_node_.begin(), by_node_.end(),
            [](const ByzFault& a, const ByzFault& b) { return a.node < b.node; });
  synced_faults_ = faults.size();
  synced_version_ = plan_->version();
}

std::size_t ByzRuntime::slot_index(TokenId tok) const {
  const auto it = std::lower_bound(
      slot_of_token_.begin(), slot_of_token_.end(), tok,
      [](const std::pair<TokenId, std::uint32_t>& e, TokenId t) {
        return e.first < t;
      });
  if (it == slot_of_token_.end() || it->first != tok) return npos;
  return it->second;
}

void ByzRuntime::rewrite_senders(Round round, std::vector<NodeId>& senders,
                                 std::vector<Message>& sent_msg,
                                 std::vector<NodeId>& removed,
                                 std::vector<NodeId>& added) {
  refresh();
  if (by_node_.empty()) return;

  // Suppress the protocol sends of active Byzantine nodes: one merge pass
  // over the ascending senders against the node-sorted faults.
  {
    auto fault = by_node_.begin();
    auto out = senders.begin();
    for (const NodeId v : senders) {
      while (fault != by_node_.end() && fault->node < v) ++fault;
      if (fault != by_node_.end() && fault->node == v &&
          round >= fault->active_from) {
        removed.push_back(v);
        continue;
      }
      *out++ = v;
    }
    senders.erase(out, senders.end());
  }

  // Inject one forged-token message per active forger. Slot order is fault
  // order; the senders merge below restores ascending node order.
  injected_.clear();
  for (Slot& slot : slots_) {
    if (round < slot.active_from) continue;
    ++slot.injections;
    if (slot.first_injected == kNever) slot.first_injected = round;
    sent_msg[static_cast<std::size_t>(slot.forger)] =
        Message{slot.token,
                (*pids_)[static_cast<std::size_t>(slot.forger)],
                round,
                /*payload=*/0};
    injected_.push_back(slot.forger);
    added.push_back(slot.forger);
  }
  if (!injected_.empty()) {
    std::sort(injected_.begin(), injected_.end());
    const auto middle =
        senders.insert(senders.end(), injected_.begin(), injected_.end());
    std::inplace_merge(senders.begin(), middle, senders.end());
  }

  // Victim provenance over the final senders: Byzantine protocol sends were
  // suppressed above, so any non-forger transmitting a forged token is a
  // protocol-following relay that accepted it — a forgery "win".
  for (const NodeId v : senders) {
    const TokenId tok = sent_msg[static_cast<std::size_t>(v)].token;
    if (!is_forged(tok)) continue;
    const std::size_t idx = slot_index(tok);
    DUALRAD_CHECK(idx != npos, "unregistered forged token in flight");
    Slot& slot = slots_[idx];
    if (v == slot.forger) continue;
    ++slot.victim_sends;
    if (slot.first_victim == kInvalidNode) {
      slot.first_victim = v;
      slot.first_victim_round = round;
    }
  }
}

bool ByzRuntime::may_transmit(NodeId v, TokenId tok) const {
  const std::size_t idx = slot_index(tok);
  if (idx == npos) return false;
  if (slots_[idx].forger == v) return true;
  return (seen_mask_[static_cast<std::size_t>(v)] &
          (std::uint64_t{1} << idx)) != 0;
}

void ByzRuntime::note_delivery(TokenId tok, NodeId v) {
  const std::size_t idx = slot_index(tok);
  DUALRAD_CHECK(idx != npos, "delivered an unregistered forged token");
  seen_mask_[static_cast<std::size_t>(v)] |= std::uint64_t{1} << idx;
}

std::vector<ForgedTokenRecord> ByzRuntime::finalize() const {
  std::vector<ForgedTokenRecord> records;
  records.reserve(slots_.size());
  for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
    const Slot& slot = slots_[idx];
    ForgedTokenRecord rec;
    rec.token = slot.token;
    rec.forger = slot.forger;
    rec.first_injected = slot.first_injected;
    rec.injections = slot.injections;
    rec.first_victim = slot.first_victim;
    rec.first_victim_round = slot.first_victim_round;
    rec.victim_sends = slot.victim_sends;
    const std::uint64_t bit = std::uint64_t{1} << idx;
    for (const std::uint64_t mask : seen_mask_) {
      if (mask & bit) ++rec.receptions;
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace dualrad::byz
