#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "campaign/scenario.hpp"
#include "core/simulator.hpp"
#include "stats/stats.hpp"

/// \file engine.hpp
/// The parallel trial executor.
///
/// A campaign is the cross product (scenario x trial index). The engine
/// builds each scenario's network and process factory once, flattens all
/// trials into one job list, and fans the jobs out over a worker pool.
/// Determinism contract: every trial's result depends only on
/// (scenario spec, master seed, trial index) — each trial gets a fresh
/// adversary from the scenario's factory and a seed from an independent
/// counter-mixed stream (core/rng.hpp), and results land in preallocated
/// slots indexed by job id — so campaign output is *bit-identical* for any
/// worker count, including 1.

namespace dualrad::campaign {

/// One completed trial, in export-ready form. All fields are integral so
/// CSV/JSONL round-trips are exact.
struct TrialRow {
  std::string scenario;
  std::uint32_t trial = 0;        ///< trial index within the scenario
  std::uint64_t seed = 0;         ///< derived seed this trial ran under
  bool completed = false;
  Round rounds = kNever;          ///< completion round, kNever if not reached
  Round rounds_executed = 0;
  std::uint64_t sends = 0;
  std::uint64_t collisions = 0;   ///< observed collision events (see
                                  ///< SimResult::total_collision_events)
  std::int32_t tokens = 1;        ///< broadcast tokens in the execution
  /// Wall time of the trial in microseconds; -1 unless
  /// CampaignConfig::measure_wall_time was set. Deliberately OUTSIDE the
  /// determinism contract: it varies run to run and is only exported when
  /// explicitly requested (export.hpp `include_timing`).
  std::int64_t wall_us = -1;

  friend bool operator==(const TrialRow&, const TrialRow&) = default;
};

/// One trial's telemetry digest (phase times + hot-path counter totals from
/// obs::RoundTelemetry), produced only when CampaignConfig::collect_telemetry
/// is set. Like wall_us, the phase times are nondeterministic and live
/// OUTSIDE the determinism contract — they are exported to a separate
/// opt-in JSONL stream (export.hpp telemetry_to_jsonl) and never touch the
/// default exports.
struct TelemetryRow {
  std::string scenario;
  std::uint32_t trial = 0;
  std::int64_t wall_us = -1;
  // Per-phase wall time (nanoseconds), summed over all rounds.
  std::uint64_t poll_ns = 0;
  std::uint64_t adversary_ns = 0;
  std::uint64_t propagate_ns = 0;
  std::uint64_t deliver_ns = 0;
  std::uint64_t merge_ns = 0;
  // Counter totals (deterministic: equal for any thread count).
  std::uint64_t polled = 0;
  std::uint64_t senders = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t calendar_scanned = 0;
  std::uint64_t replans = 0;
  std::uint64_t reach_appends = 0;
  std::uint64_t newly_covered = 0;
  std::uint64_t max_round_deliveries = 0;

  friend bool operator==(const TelemetryRow&, const TelemetryRow&) = default;
};

/// Per-scenario aggregate over its trials. Round statistics are over
/// *completed* trials only; `failures` counts the rest.
struct ScenarioSummary {
  std::string scenario;
  std::size_t trials = 0;
  std::size_t failures = 0;
  stats::Summary rounds{};        ///< count == trials - failures
  double mean_sends = 0.0;        ///< over all trials
  double mean_collisions = 0.0;   ///< over all trials
  /// Mean trial wall time in milliseconds; -1 unless measured.
  double mean_wall_ms = -1.0;
};

struct CampaignResult {
  /// All trial rows, ordered (scenario registration order, trial index).
  std::vector<TrialRow> trials;
  /// One summary per scenario, in scenario order.
  std::vector<ScenarioSummary> summaries;
  /// Telemetry rows, same order as `trials`; empty unless
  /// CampaignConfig::collect_telemetry was set.
  std::vector<TelemetryRow> telemetry;
  /// True iff the run stopped early on CampaignConfig::cancel. Rows of
  /// trials that never ran are default-constructed (empty scenario name) and
  /// `summaries` is left empty — a cancelled result is only good for
  /// inspecting which trials completed (e.g. via a checkpoint journal).
  bool cancelled = false;
};

struct CampaignConfig {
  std::uint64_t master_seed = 1;
  /// Worker threads; 0 means hardware_concurrency (at least 1). The result
  /// does not depend on this.
  unsigned threads = 0;
  /// SimConfig::threads of every trial: the sharded parallel round kernel
  /// *within* one execution. Orthogonal to `threads` (trials x intra-trial
  /// shards run concurrently); the result does not depend on it either —
  /// the kernel's shard merge is deterministic, and tests/test_campaign.cpp
  /// pins byte-identical exports across values.
  unsigned threads_per_trial = 1;
  /// When nonzero, overrides every scenario's trial count.
  std::size_t trials_override = 0;
  /// Record per-trial wall time into TrialRow::wall_us (and summary
  /// mean_wall_ms). Off by default because timing is inherently
  /// nondeterministic; simulation results are unaffected either way.
  bool measure_wall_time = false;
  /// Attach an obs::RoundTelemetry to every trial and fill
  /// CampaignResult::telemetry. The simulation results and default exports
  /// are bit-identical either way (pinned in tests) — telemetry is strictly
  /// out-of-band.
  bool collect_telemetry = false;
  /// When nonzero, a progress heartbeat is printed to stderr every this many
  /// seconds: trials done/total, aggregate simulated rounds/s, ETA, and the
  /// process's current RSS. Purely cosmetic; never touches results.
  unsigned heartbeat_secs = 0;
  /// SimConfig::trace of every trial. None (the default) keeps trials lean;
  /// observers that re-verify executions (e.g. the trace auditor behind
  /// dualrad_campaign --audit) need TraceLevel::Compressed or Full here.
  /// Trial rows and default exports are identical for every level — traces
  /// ride on the SimResult handed to `observer` and are dropped after it.
  TraceLevel trial_trace = TraceLevel::None;
  /// Optional per-trial observer with access to the full SimResult (e.g. for
  /// audits that need first_token). Called from worker threads but
  /// serialized by the engine; completion order is scheduling-dependent, so
  /// observers must fold results order-independently.
  std::function<void(const Scenario& scenario, const TrialRow& row,
                     const SimResult& result)>
      observer;
  /// Optional per-trial completion sink, serialized like `observer`. Unlike
  /// the observer it receives export-ready rows only — this is the hook the
  /// checkpoint journal and the serve-mode result stream hang off.
  /// `telemetry` is nullptr unless collect_telemetry is set. Not called for
  /// trials satisfied from `resume_rows` (they are already journaled).
  std::function<void(const TrialRow& row, const TelemetryRow* telemetry)>
      row_sink;
  /// Cooperative cancellation (e.g. from a SIGINT handler): when the pointee
  /// becomes true, workers stop claiming new trials, in-flight trials finish
  /// and reach `row_sink`, and run_campaign returns with
  /// CampaignResult::cancelled set instead of computing summaries.
  const std::atomic<bool>* cancel = nullptr;
  /// Checkpoint/resume: rows of already-completed trials (typically loaded
  /// from a serve/checkpoint journal). Matching (scenario, trial) jobs are
  /// satisfied from here verbatim instead of re-running; each row's seed
  /// must equal the engine's derived trial seed (throws std::invalid_argument
  /// otherwise — the journal belongs to a different master seed or grid).
  /// Combined with the deterministic seed streams this makes a resumed
  /// campaign's exports byte-identical to an uninterrupted run.
  const std::vector<TrialRow>* resume_rows = nullptr;
};

/// Per-trial execution options of TrialExecutor (the serve-mode work-unit
/// runner). Mirrors the corresponding CampaignConfig fields.
struct TrialOptions {
  unsigned threads_per_trial = 1;
  bool measure_wall_time = false;
  bool collect_telemetry = false;
  /// SimConfig::trace of the trial (see CampaignConfig::trial_trace).
  TraceLevel trace = TraceLevel::None;
};

/// One scenario prepared for individually-addressed trial execution: the
/// network and process factory are built once (eagerly, validating the
/// builders), then (master_seed, trial index) -> TrialRow is a pure
/// function — the exact function the batch engine computes, so a trial run
/// here is byte-identical to the same trial inside run_campaign. This is the
/// library API the serve-mode worker pool drives; run() is const and
/// thread-safe.
class TrialExecutor {
 public:
  /// Copies the scenario spec (cheap: a handful of std::functions), builds
  /// the network and factory. Throws std::invalid_argument on unset builders
  /// or a null factory.
  TrialExecutor(const Scenario& scenario, std::uint64_t master_seed);

  struct Outcome {
    TrialRow row;
    /// Filled only when TrialOptions::collect_telemetry was set.
    TelemetryRow telemetry;
    /// The full simulation result (for observers / audits).
    SimResult sim;
  };

  [[nodiscard]] Outcome run(std::uint32_t trial,
                            const TrialOptions& options = {}) const;

  [[nodiscard]] const Scenario& scenario() const { return spec_; }
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  Scenario spec_;
  std::uint64_t master_seed_ = 0;
  std::uint64_t stream_ = 0;
  DualGraph net_;
  ProcessFactory factory_;
};

/// The campaign grid shape: (scenario name, trial count) in registration
/// order. Row `i` of a flat trial vector belongs to the grid slot obtained
/// by walking the counts in order.
using CampaignGrid = std::vector<std::pair<std::string, std::size_t>>;

/// Per-scenario summaries of a flat, grid-ordered row vector — the summary
/// half of run_campaign, shared with the serve-mode coordinator so a
/// distributed campaign summarizes byte-identically to a batch run. `timed`
/// fills mean_wall_ms (from TrialRow::wall_us). Throws std::invalid_argument
/// if rows.size() differs from the grid total.
[[nodiscard]] std::vector<ScenarioSummary> summarize_trials(
    const std::vector<TrialRow>& rows, const CampaignGrid& grid, bool timed);

/// Seed stream of a scenario under a master seed: mixes the master with an
/// FNV-1a hash of the name, so a scenario's trials are independent of which
/// other scenarios run alongside it.
[[nodiscard]] std::uint64_t scenario_stream(std::uint64_t master_seed,
                                            std::string_view name);

/// The simulator seed of one trial.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t master_seed,
                                       std::string_view name,
                                       std::size_t trial);

/// Run all trials of all scenarios. Throws std::invalid_argument on an
/// ill-formed scenario; exceptions thrown inside trials are rethrown after
/// the pool drains.
[[nodiscard]] CampaignResult run_campaign(const std::vector<Scenario>& scenarios,
                                          const CampaignConfig& config = {});

/// Summary lookup by scenario name; nullptr if absent.
[[nodiscard]] const ScenarioSummary* find_summary(const CampaignResult& result,
                                                  std::string_view name);

}  // namespace dualrad::campaign
