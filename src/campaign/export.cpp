#include "campaign/export.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "campaign/jsonl.hpp"
#include "campaign/registry.hpp"

namespace dualrad::campaign {

namespace {

using jsonl::field;
using jsonl::field_opt;
using jsonl::to_ll;
using jsonl::to_u64;

[[nodiscard]] std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Scenario names are validated to a quote-free charset (registry.hpp), so
/// embedding them verbatim in JSON and CSV is safe; enforce it here for rows
/// constructed outside a registry.
void require_exportable(const std::string& name) {
  DUALRAD_REQUIRE(is_valid_scenario_name(name),
                  "scenario name not exportable: " + name);
}

[[nodiscard]] std::vector<std::string> split(const std::string& line,
                                             char sep) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, sep)) out.push_back(cell);
  return out;
}

}  // namespace

std::string trials_to_jsonl(const std::vector<TrialRow>& rows,
                            bool include_timing) {
  std::string out;
  for (const TrialRow& r : rows) {
    require_exportable(r.scenario);
    out += "{\"scenario\":\"" + r.scenario + "\"";
    out += ",\"trial\":" + std::to_string(r.trial);
    out += ",\"seed\":" + std::to_string(r.seed);
    out += std::string(",\"completed\":") + (r.completed ? "true" : "false");
    out += ",\"rounds\":" + std::to_string(r.rounds);
    out += ",\"rounds_executed\":" + std::to_string(r.rounds_executed);
    out += ",\"sends\":" + std::to_string(r.sends);
    out += ",\"collisions\":" + std::to_string(r.collisions);
    out += ",\"tokens\":" + std::to_string(r.tokens);
    if (include_timing) out += ",\"wall_us\":" + std::to_string(r.wall_us);
    out += "}\n";
  }
  return out;
}

std::string trials_to_csv(const std::vector<TrialRow>& rows,
                          bool include_timing) {
  std::string out =
      "scenario,trial,seed,completed,rounds,rounds_executed,sends,"
      "collisions,tokens";
  if (include_timing) out += ",wall_us";
  out += '\n';
  for (const TrialRow& r : rows) {
    require_exportable(r.scenario);
    out += r.scenario;
    out += ',' + std::to_string(r.trial);
    out += ',' + std::to_string(r.seed);
    out += ',' + std::string(r.completed ? "1" : "0");
    out += ',' + std::to_string(r.rounds);
    out += ',' + std::to_string(r.rounds_executed);
    out += ',' + std::to_string(r.sends);
    out += ',' + std::to_string(r.collisions);
    out += ',' + std::to_string(r.tokens);
    if (include_timing) out += ',' + std::to_string(r.wall_us);
    out += '\n';
  }
  return out;
}

std::string summaries_to_jsonl(const std::vector<ScenarioSummary>& summaries,
                               bool include_timing) {
  std::string out;
  for (const ScenarioSummary& s : summaries) {
    require_exportable(s.scenario);
    const bool any = s.rounds.count > 0;
    const auto stat = [&](double v) { return fmt_double(any ? v : -1.0); };
    out += "{\"scenario\":\"" + s.scenario + "\"";
    out += ",\"trials\":" + std::to_string(s.trials);
    out += ",\"failures\":" + std::to_string(s.failures);
    out += ",\"mean_rounds\":" + stat(s.rounds.mean);
    out += ",\"stddev_rounds\":" + stat(s.rounds.stddev);
    out += ",\"min_rounds\":" + stat(s.rounds.min);
    out += ",\"max_rounds\":" + stat(s.rounds.max);
    out += ",\"median_rounds\":" + stat(s.rounds.median);
    out += ",\"p90_rounds\":" + stat(s.rounds.p90);
    out += ",\"mean_sends\":" + fmt_double(s.mean_sends);
    out += ",\"mean_collisions\":" + fmt_double(s.mean_collisions);
    if (include_timing) out += ",\"mean_wall_ms\":" + fmt_double(s.mean_wall_ms);
    out += "}\n";
  }
  return out;
}

std::string summaries_to_csv(const std::vector<ScenarioSummary>& summaries,
                             bool include_timing) {
  std::string out =
      "scenario,trials,failures,mean_rounds,stddev_rounds,min_rounds,"
      "max_rounds,median_rounds,p90_rounds,mean_sends,mean_collisions";
  if (include_timing) out += ",mean_wall_ms";
  out += '\n';
  for (const ScenarioSummary& s : summaries) {
    require_exportable(s.scenario);
    const bool any = s.rounds.count > 0;
    const auto stat = [&](double v) { return fmt_double(any ? v : -1.0); };
    out += s.scenario;
    out += ',' + std::to_string(s.trials);
    out += ',' + std::to_string(s.failures);
    out += ',' + stat(s.rounds.mean);
    out += ',' + stat(s.rounds.stddev);
    out += ',' + stat(s.rounds.min);
    out += ',' + stat(s.rounds.max);
    out += ',' + stat(s.rounds.median);
    out += ',' + stat(s.rounds.p90);
    out += ',' + fmt_double(s.mean_sends);
    out += ',' + fmt_double(s.mean_collisions);
    if (include_timing) out += ',' + fmt_double(s.mean_wall_ms);
    out += '\n';
  }
  return out;
}

std::vector<TrialRow> trials_from_jsonl(const std::string& text) {
  std::vector<TrialRow> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    jsonl::require_flat_object(line);
    TrialRow r;
    r.scenario = std::string(field(line, "scenario"));
    r.trial = static_cast<std::uint32_t>(to_u64(field(line, "trial")));
    r.seed = to_u64(field(line, "seed"));
    const std::string_view completed = field(line, "completed");
    DUALRAD_REQUIRE(completed == "true" || completed == "false",
                    "completed must be true/false");
    r.completed = completed == "true";
    r.rounds = to_ll(field(line, "rounds"));
    r.rounds_executed = to_ll(field(line, "rounds_executed"));
    r.sends = to_u64(field(line, "sends"));
    r.collisions = to_u64(field(line, "collisions"));
    // Optional keys: absent in exports predating multi-message / timing.
    const std::optional<std::string_view> tokens = field_opt(line, "tokens");
    r.tokens = tokens.has_value() ? static_cast<std::int32_t>(to_ll(*tokens)) : 1;
    const std::optional<std::string_view> wall = field_opt(line, "wall_us");
    r.wall_us = wall.has_value() ? to_ll(*wall) : -1;
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<TrialRow> trials_from_csv(const std::string& text) {
  std::vector<TrialRow> rows;
  std::istringstream in(text);
  std::string line;
  bool header = true;
  // Column count announced by the header: 8 (legacy), 9 (+tokens), or
  // 10 (+wall_us). Every row must match it exactly.
  std::size_t columns = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      DUALRAD_REQUIRE(
          line.rfind("scenario,trial,seed,completed,rounds,rounds_executed,"
                     "sends,collisions",
                     0) == 0,
          "unexpected trial CSV header: " + line);
      columns = split(line, ',').size();
      DUALRAD_REQUIRE(columns >= 8 && columns <= 10,
                      "unexpected trial CSV column count: " + line);
      header = false;
      continue;
    }
    const std::vector<std::string> cells = split(line, ',');
    DUALRAD_REQUIRE(cells.size() == columns,
                    "trial CSV row does not match the header: " + line);
    TrialRow r;
    r.scenario = cells[0];
    r.trial = static_cast<std::uint32_t>(to_u64(cells[1]));
    r.seed = to_u64(cells[2]);
    DUALRAD_REQUIRE(cells[3] == "0" || cells[3] == "1",
                    "completed must be 0/1");
    r.completed = cells[3] == "1";
    r.rounds = to_ll(cells[4]);
    r.rounds_executed = to_ll(cells[5]);
    r.sends = to_u64(cells[6]);
    r.collisions = to_u64(cells[7]);
    if (columns >= 9) r.tokens = static_cast<std::int32_t>(to_ll(cells[8]));
    if (columns >= 10) r.wall_us = to_ll(cells[9]);
    rows.push_back(std::move(r));
  }
  return rows;
}

std::string telemetry_to_jsonl(const std::vector<TelemetryRow>& rows) {
  std::string out;
  for (const TelemetryRow& r : rows) {
    require_exportable(r.scenario);
    out += "{\"scenario\":\"" + r.scenario + "\"";
    out += ",\"trial\":" + std::to_string(r.trial);
    out += ",\"wall_us\":" + std::to_string(r.wall_us);
    out += ",\"poll_ns\":" + std::to_string(r.poll_ns);
    out += ",\"adversary_ns\":" + std::to_string(r.adversary_ns);
    out += ",\"propagate_ns\":" + std::to_string(r.propagate_ns);
    out += ",\"deliver_ns\":" + std::to_string(r.deliver_ns);
    out += ",\"merge_ns\":" + std::to_string(r.merge_ns);
    out += ",\"polled\":" + std::to_string(r.polled);
    out += ",\"senders\":" + std::to_string(r.senders);
    out += ",\"deliveries\":" + std::to_string(r.deliveries);
    out += ",\"collisions\":" + std::to_string(r.collisions);
    out += ",\"calendar_scanned\":" + std::to_string(r.calendar_scanned);
    out += ",\"replans\":" + std::to_string(r.replans);
    out += ",\"reach_appends\":" + std::to_string(r.reach_appends);
    out += ",\"newly_covered\":" + std::to_string(r.newly_covered);
    out += ",\"max_round_deliveries\":" +
           std::to_string(r.max_round_deliveries);
    out += "}\n";
  }
  return out;
}

std::vector<TelemetryRow> telemetry_from_jsonl(const std::string& text) {
  std::vector<TelemetryRow> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    jsonl::require_flat_object(line);
    TelemetryRow r;
    r.scenario = std::string(field(line, "scenario"));
    r.trial = static_cast<std::uint32_t>(to_u64(field(line, "trial")));
    // Everything else is optional: lines from before a given counter existed
    // (including timing-only legacy rows with just wall_us) parse with that
    // counter at its default.
    const auto opt_ll = [&](std::string_view key, std::int64_t dflt) {
      const std::optional<std::string_view> v = field_opt(line, key);
      return v.has_value() ? to_ll(*v) : dflt;
    };
    const auto opt_u64 = [&](std::string_view key) -> std::uint64_t {
      const std::optional<std::string_view> v = field_opt(line, key);
      return v.has_value() ? to_u64(*v) : 0;
    };
    r.wall_us = opt_ll("wall_us", -1);
    r.poll_ns = opt_u64("poll_ns");
    r.adversary_ns = opt_u64("adversary_ns");
    r.propagate_ns = opt_u64("propagate_ns");
    r.deliver_ns = opt_u64("deliver_ns");
    r.merge_ns = opt_u64("merge_ns");
    r.polled = opt_u64("polled");
    r.senders = opt_u64("senders");
    r.deliveries = opt_u64("deliveries");
    r.collisions = opt_u64("collisions");
    r.calendar_scanned = opt_u64("calendar_scanned");
    r.replans = opt_u64("replans");
    r.reach_appends = opt_u64("reach_appends");
    r.newly_covered = opt_u64("newly_covered");
    r.max_round_deliveries = opt_u64("max_round_deliveries");
    rows.push_back(std::move(r));
  }
  return rows;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("dualrad: cannot open " + path);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  if (!out) throw std::runtime_error("dualrad: write failed: " + path);
}

}  // namespace dualrad::campaign
