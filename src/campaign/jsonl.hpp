#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/types.hpp"

/// \file jsonl.hpp
/// Key-based field scanning for the flat single-line JSON objects this
/// project exports (campaign rows, telemetry rows, serve-mode wire
/// messages). Shared by campaign/export.cpp and src/serve/.
///
/// These are deliberately not a JSON parser: every producer in this codebase
/// emits one flat object per line with a fixed key order, unquoted numeric
/// values, and scenario names restricted to a quote-free charset
/// (registry.hpp). The scanners exploit that, and require_flat_object rejects
/// anything that violates it — in particular lines produced by two writers
/// whose torn output interleaved — so a corrupt file fails loudly instead of
/// parsing as plausible garbage.

namespace dualrad::campaign::jsonl {

/// Value of `"key":` in `line`, or nullopt if the key is absent. String
/// values are returned without quotes; other values end at the next ',' or
/// '}'. Throws std::invalid_argument on an unterminated value.
[[nodiscard]] inline std::optional<std::string_view> field_opt(
    std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    DUALRAD_REQUIRE(end != std::string_view::npos,
                    "unterminated string in JSONL line");
  } else {
    end = line.find_first_of(",}", begin);
    DUALRAD_REQUIRE(end != std::string_view::npos, "malformed JSONL line");
  }
  return line.substr(begin, end - begin);
}

/// Like field_opt but the key must be present.
[[nodiscard]] inline std::string_view field(std::string_view line,
                                            std::string_view key) {
  const std::optional<std::string_view> value = field_opt(line, key);
  DUALRAD_REQUIRE(value.has_value(),
                  "JSONL line missing key '" + std::string(key) + "'");
  return *value;
}

[[nodiscard]] inline long long to_ll(std::string_view s) {
  try {
    return std::stoll(std::string(s));
  } catch (const std::exception&) {
    throw std::invalid_argument("dualrad: non-numeric field: " +
                                std::string(s));
  }
}

[[nodiscard]] inline std::uint64_t to_u64(std::string_view s) {
  try {
    return std::stoull(std::string(s));
  } catch (const std::exception&) {
    throw std::invalid_argument("dualrad: non-numeric field: " +
                                std::string(s));
  }
}

/// Reject lines that are not exactly one flat object: must start with '{',
/// end with '}', and contain no second '{'. A second '{' is the signature of
/// two torn writes interleaving on one line — key-based scanning would
/// happily pick fields from either object, so such lines must fail loudly.
inline void require_flat_object(std::string_view line) {
  DUALRAD_REQUIRE(!line.empty() && line.front() == '{',
                  "JSONL line does not start an object: " + std::string(line));
  DUALRAD_REQUIRE(line.back() == '}',
                  "truncated JSONL line: " + std::string(line));
  DUALRAD_REQUIRE(line.find('{', 1) == std::string_view::npos,
                  "interleaved JSONL line: " + std::string(line));
}

}  // namespace dualrad::campaign::jsonl
