#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/scenario.hpp"

/// \file registry.hpp
/// The scenario registry: a named, ordered collection of Scenarios.
///
/// Registration order is preserved (it defines the row order of campaign
/// output); names are unique and validated so they can be embedded verbatim
/// in CSV and JSONL. The built-in catalogue (builtin_scenarios.hpp) registers
/// the standard paper workloads; benches and tools may register more.

namespace dualrad::campaign {

/// True iff `name` is non-empty and uses only [A-Za-z0-9._/+:=-].
[[nodiscard]] bool is_valid_scenario_name(std::string_view name);

class ScenarioRegistry {
 public:
  /// Register a scenario. Throws std::invalid_argument if the name is
  /// invalid, already registered, or any builder is unset.
  void add(Scenario scenario);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Throws std::invalid_argument if absent.
  [[nodiscard]] const Scenario& at(std::string_view name) const;

  /// All scenarios, in registration order.
  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

  /// Scenarios whose name or any tag contains `filter` (case-sensitive
  /// substring). An empty filter matches everything. Registration order.
  [[nodiscard]] std::vector<Scenario> match(std::string_view filter) const;

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace dualrad::campaign
