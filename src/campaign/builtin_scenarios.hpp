#pragma once

#include "campaign/registry.hpp"

/// \file builtin_scenarios.hpp
/// The standard scenario catalogue: the paper's Table 1 / Table 2 workloads,
/// the realistic dual-graph families, and the multi-message MAC-layer suite
/// (src/mac/mac_scenarios.hpp), as registered campaign scenarios.
///
/// Naming convention: <model>/<algorithm>/<network>/<adversary>, where model
/// is "classical" (G == G'), "dual", or "mac" (multi-message over the
/// abstract MAC layer). Tags include the model, the algorithm family
/// ("deterministic"/"randomized"), and the paper anchor ("table1", "table2",
/// "section7", ...).

namespace dualrad::campaign {

/// Register the built-in catalogue (>= 18 scenarios) into `registry`.
/// Throws if any name collides with an already-registered scenario.
void register_builtin_scenarios(ScenarioRegistry& registry);

/// A fresh registry holding exactly the built-in catalogue.
[[nodiscard]] ScenarioRegistry builtin_registry();

}  // namespace dualrad::campaign
