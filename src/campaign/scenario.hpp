#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adversary.hpp"
#include "core/process.hpp"
#include "core/simulator.hpp"
#include "core/types.hpp"
#include "graph/dual_graph.hpp"

/// \file scenario.hpp
/// Named experiment specifications for the campaign engine.
///
/// A Scenario binds everything one trial needs: a network builder, an
/// algorithm (as a ProcessFactory builder, so it can read n / Delta off the
/// built network), an *adversary factory* — a factory rather than a shared
/// Adversary& because trials run concurrently and stateful adversaries
/// (BernoulliAdversary, GreedyBlocker with caches, ...) must start each
/// execution fresh — plus the model knobs (collision rule, start rule) and
/// the trial count.
///
/// Builders must be pure: calling them twice yields equivalent objects. This
/// is what makes campaign runs bit-identical regardless of worker count.

namespace dualrad::campaign {

/// Builds the (fixed) network of a scenario. Random families capture their
/// topology seed at registration time, so the graph is the same every run.
using NetworkBuilder = std::function<DualGraph()>;

/// Builds the process factory for a concrete network (gets to read
/// node_count, max in-degree, ...).
using AlgorithmBuilder = std::function<ProcessFactory(const DualGraph& net)>;

/// Creates a fresh adversary for one trial. `seed` is the trial's derived
/// seed stream; deterministic adversaries may ignore it.
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(std::uint64_t seed)>;

/// Optional replacement for the engine's default trial body (one
/// run_broadcast execution). Harnesses whose logical trial wraps several
/// executions — e.g. the repeated-broadcast learning pipeline — implement
/// one here and return a SimResult-shaped digest for the TrialRow. Must be
/// a pure function of its arguments (the determinism contract).
using TrialRunner =
    std::function<SimResult(const DualGraph& net, const ProcessFactory& factory,
                            Adversary& adversary, const SimConfig& config)>;

struct Scenario {
  /// Unique registry key, e.g. "dual/harmonic/layered/greedy". Restricted to
  /// [A-Za-z0-9._/+:=-] so exported CSV/JSONL never needs quoting.
  std::string name;
  std::string description{};
  /// Free-form labels ("dual", "randomized", "table2", ...) used by
  /// `--filter` and ScenarioRegistry::match.
  std::vector<std::string> tags{};

  NetworkBuilder network;
  AlgorithmBuilder algorithm;
  AdversaryFactory adversary;
  /// Empty: the engine runs one run_broadcast execution per trial.
  TrialRunner runner{};

  CollisionRule rule = CollisionRule::CR4;
  StartRule start = StartRule::Asynchronous;
  Round max_rounds = 10'000'000;
  /// Multi-message broadcast sources (SimConfig::token_sources); empty means
  /// the classic single token at the network source.
  std::vector<NodeId> token_sources{};
  std::size_t trials = 5;
};

/// Adversary factory for adversaries constructed from fixed arguments
/// (ignores the trial seed): make_adversary_factory<GreedyBlockerAdversary>().
template <class A, class... Args>
[[nodiscard]] AdversaryFactory make_adversary_factory(Args&&... args) {
  return [... args = std::forward<Args>(args)](std::uint64_t) {
    return std::make_unique<A>(args...);
  };
}

/// Adversary factory for adversaries keyed by the trial seed:
/// make_seeded_adversary_factory<BernoulliAdversary>(0.5) constructs
/// BernoulliAdversary(0.5, trial_seed).
template <class A, class... Args>
[[nodiscard]] AdversaryFactory make_seeded_adversary_factory(Args&&... args) {
  return [... args = std::forward<Args>(args)](std::uint64_t seed) {
    return std::make_unique<A>(args..., seed);
  };
}

}  // namespace dualrad::campaign
