#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <set>
#include <string_view>
#include <thread>

#include "core/rng.hpp"
#include "obs/heartbeat.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"

namespace dualrad::campaign {

namespace {

[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

[[nodiscard]] DualGraph build_network(const Scenario& s) {
  DUALRAD_REQUIRE(static_cast<bool>(s.network) &&
                      static_cast<bool>(s.algorithm) &&
                      static_cast<bool>(s.adversary),
                  "scenario '" + s.name + "' has unset builders");
  return s.network();
}

}  // namespace

std::uint64_t scenario_stream(std::uint64_t master_seed,
                              std::string_view name) {
  return mix_seed(master_seed, fnv1a64(name));
}

std::uint64_t trial_seed(std::uint64_t master_seed, std::string_view name,
                         std::size_t trial) {
  return mix_seed(scenario_stream(master_seed, name),
                  static_cast<std::uint64_t>(trial));
}

TrialExecutor::TrialExecutor(const Scenario& scenario,
                             std::uint64_t master_seed)
    : spec_(scenario),
      master_seed_(master_seed),
      stream_(scenario_stream(master_seed, scenario.name)),
      net_(build_network(scenario)),
      factory_(spec_.algorithm(net_)) {
  DUALRAD_REQUIRE(static_cast<bool>(factory_),
                  "scenario '" + spec_.name + "' built a null process factory");
}

TrialExecutor::Outcome TrialExecutor::run(std::uint32_t trial,
                                          const TrialOptions& options) const {
  const std::uint64_t seed =
      mix_seed(stream_, static_cast<std::uint64_t>(trial));

  // Fresh adversary per trial: stateful adversaries start clean, and no
  // Adversary instance is ever shared between concurrent trials.
  const std::unique_ptr<Adversary> adversary =
      spec_.adversary(mix_seed(seed, 0xAD));
  DUALRAD_CHECK(adversary != nullptr, "adversary factory returned null");

  SimConfig sim;
  sim.rule = spec_.rule;
  sim.start = spec_.start;
  sim.max_rounds = spec_.max_rounds;
  sim.seed = seed;
  sim.token_sources = spec_.token_sources;
  sim.threads = options.threads_per_trial;
  sim.trace = options.trace;
  // One telemetry registry per trial, attached out-of-band. Window 1: only
  // whole-execution totals are kept, so the per-round ring can be minimal.
  obs::RoundTelemetry telemetry(1);
  if (options.collect_telemetry) sim.telemetry = &telemetry;
  const auto started = std::chrono::steady_clock::now();
  SimResult run = spec_.runner ? spec_.runner(net_, factory_, *adversary, sim)
                               : run_broadcast(net_, factory_, *adversary, sim);
  const auto elapsed = std::chrono::steady_clock::now() - started;

  Outcome out;
  TrialRow& row = out.row;
  row.scenario = spec_.name;
  row.trial = trial;
  row.seed = seed;
  row.completed = run.completed;
  row.rounds = run.completed ? run.completion_round : kNever;
  row.rounds_executed = run.rounds_executed;
  row.sends = run.total_sends;
  row.collisions = run.total_collision_events;
  row.tokens = std::max<std::int32_t>(run.token_count(), 1);
  if (options.measure_wall_time) {
    row.wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  }

  if (options.collect_telemetry) {
    TelemetryRow& t = out.telemetry;
    t.scenario = spec_.name;
    t.trial = trial;
    t.wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
    t.poll_ns = telemetry.total_phase_ns(obs::Phase::Poll);
    t.adversary_ns = telemetry.total_phase_ns(obs::Phase::Adversary);
    t.propagate_ns = telemetry.total_phase_ns(obs::Phase::Propagate);
    t.deliver_ns = telemetry.total_phase_ns(obs::Phase::Deliver);
    t.merge_ns = telemetry.total_phase_ns(obs::Phase::ShardMerge);
    const obs::RoundCounters& c = telemetry.totals();
    t.polled = c.polled;
    t.senders = c.senders;
    t.deliveries = c.deliveries;
    t.collisions = c.collisions;
    t.calendar_scanned = c.calendar_scanned;
    t.replans = c.replans;
    t.reach_appends = c.reach_appends;
    t.newly_covered = c.newly_covered;
    t.max_round_deliveries = telemetry.max_round_deliveries();
  }

  out.sim = std::move(run);
  return out;
}

std::vector<ScenarioSummary> summarize_trials(
    const std::vector<TrialRow>& rows, const CampaignGrid& grid, bool timed) {
  std::size_t total = 0;
  for (const auto& [name, trials] : grid) total += trials;
  DUALRAD_REQUIRE(rows.size() == total,
                  "row count does not match the campaign grid");

  std::vector<ScenarioSummary> summaries;
  summaries.reserve(grid.size());
  std::size_t first = 0;
  for (const auto& [name, trials] : grid) {
    ScenarioSummary summary;
    summary.scenario = name;
    summary.trials = trials;
    std::vector<double> rounds;
    double sends = 0.0, collisions = 0.0, wall_us = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      const TrialRow& row = rows[first + t];
      if (row.completed) {
        rounds.push_back(static_cast<double>(row.rounds));
      } else {
        ++summary.failures;
      }
      sends += static_cast<double>(row.sends);
      collisions += static_cast<double>(row.collisions);
      wall_us += static_cast<double>(row.wall_us);
    }
    summary.rounds = stats::summarize(std::move(rounds));
    summary.mean_sends = sends / static_cast<double>(trials);
    summary.mean_collisions = collisions / static_cast<double>(trials);
    if (timed) {
      summary.mean_wall_ms = wall_us / 1000.0 / static_cast<double>(trials);
    }
    summaries.push_back(std::move(summary));
    first += trials;
  }
  return summaries;
}

CampaignResult run_campaign(const std::vector<Scenario>& scenarios,
                            const CampaignConfig& config) {
  struct PreparedScenario {
    const Scenario* spec = nullptr;
    TrialExecutor executor;
    std::size_t trials = 0;
    std::size_t first_job = 0;  ///< index of trial 0 in the flat job list
  };

  std::vector<PreparedScenario> prepared;
  prepared.reserve(scenarios.size());
  std::size_t total_jobs = 0;
  std::set<std::string_view> names;
  for (const Scenario& s : scenarios) {
    // Duplicate names would share a seed stream (correlated trials) and
    // collide in find_summary; reject them even when the caller bypassed a
    // ScenarioRegistry.
    DUALRAD_REQUIRE(names.insert(s.name).second,
                    "duplicate scenario name in campaign: " + s.name);
    const std::size_t trials =
        config.trials_override != 0 ? config.trials_override : s.trials;
    DUALRAD_REQUIRE(trials >= 1,
                    "scenario '" + s.name + "' needs at least one trial");
    prepared.push_back(PreparedScenario{
        &s, TrialExecutor(s, config.master_seed), trials, total_jobs});
    total_jobs += trials;
  }

  CampaignResult result;
  result.trials.resize(total_jobs);
  if (config.collect_telemetry) result.telemetry.resize(total_jobs);

  // job id -> scenario index, so workers claim jobs with one atomic fetch.
  std::vector<std::size_t> scenario_of_job(total_jobs);
  for (std::size_t si = 0; si < prepared.size(); ++si) {
    for (std::size_t t = 0; t < prepared[si].trials; ++t) {
      scenario_of_job[prepared[si].first_job + t] = si;
    }
  }

  // Checkpoint resume: satisfy journaled (scenario, trial) jobs verbatim.
  // Seeds are validated against the derived streams so a journal from a
  // different master seed or grid fails loudly instead of corrupting the
  // byte-identity contract.
  std::vector<char> resumed(total_jobs, 0);
  if (config.resume_rows != nullptr) {
    std::map<std::string_view, std::size_t> scenario_index;
    for (std::size_t si = 0; si < prepared.size(); ++si) {
      scenario_index.emplace(prepared[si].spec->name, si);
    }
    for (const TrialRow& row : *config.resume_rows) {
      const auto it = scenario_index.find(row.scenario);
      DUALRAD_REQUIRE(it != scenario_index.end(),
                      "resume row for unknown scenario: " + row.scenario);
      const PreparedScenario& p = prepared[it->second];
      DUALRAD_REQUIRE(row.trial < p.trials,
                      "resume row trial out of range in " + row.scenario);
      DUALRAD_REQUIRE(
          row.seed == trial_seed(config.master_seed, row.scenario, row.trial),
          "resume row seed mismatch (wrong master seed or journal?) in " +
              row.scenario);
      const std::size_t job = p.first_job + row.trial;
      result.trials[job] = row;
      resumed[job] = 1;
    }
  }

  std::atomic<std::size_t> next_job{0};
  std::atomic<std::size_t> jobs_done{0};
  std::atomic<std::uint64_t> rounds_done{0};
  std::atomic<bool> failed{false};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex observer_mutex;

  TrialOptions options;
  options.threads_per_trial = config.threads_per_trial;
  options.measure_wall_time = config.measure_wall_time;
  options.collect_telemetry = config.collect_telemetry;
  options.trace = config.trial_trace;

  const auto run_one = [&](std::size_t job) {
    const PreparedScenario& p = prepared[scenario_of_job[job]];
    const std::uint32_t trial = static_cast<std::uint32_t>(job - p.first_job);
    TrialExecutor::Outcome outcome = p.executor.run(trial, options);

    result.trials[job] = outcome.row;
    if (config.collect_telemetry) result.telemetry[job] = outcome.telemetry;

    if (config.observer || config.row_sink) {
      const std::lock_guard<std::mutex> lock(observer_mutex);
      if (config.observer) {
        config.observer(*p.spec, result.trials[job], outcome.sim);
      }
      if (config.row_sink) {
        config.row_sink(
            result.trials[job],
            config.collect_telemetry ? &result.telemetry[job] : nullptr);
      }
    }

    rounds_done.fetch_add(
        static_cast<std::uint64_t>(outcome.row.rounds_executed),
        std::memory_order_relaxed);
    jobs_done.fetch_add(1, std::memory_order_relaxed);
  };

  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      if (config.cancel != nullptr &&
          config.cancel->load(std::memory_order_relaxed)) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      const std::size_t job = next_job.fetch_add(1, std::memory_order_relaxed);
      if (job >= total_jobs) return;
      if (resumed[job]) {
        jobs_done.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      try {
        run_one(job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  unsigned threads = config.threads != 0 ? config.threads
                                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(total_jobs, 1)));

  // Progress heartbeat: one line to stderr every heartbeat_secs while trials
  // run. Reads only the progress atomics and /proc RSS — never results. The
  // obs::Heartbeat wait is condition-variable based, so a campaign that
  // finishes (or is cancelled) mid-interval stops it immediately.
  obs::Heartbeat heartbeat;
  if (config.heartbeat_secs > 0) {
    const auto t0 = std::chrono::steady_clock::now();
    heartbeat.start(std::chrono::seconds(config.heartbeat_secs), [&] {
      const std::size_t done = jobs_done.load(std::memory_order_relaxed);
      const std::uint64_t rounds = rounds_done.load(std::memory_order_relaxed);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double rate = secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
      char eta[32];
      if (done == 0) {
        std::snprintf(eta, sizeof eta, "?");
      } else if (done >= total_jobs) {
        std::snprintf(eta, sizeof eta, "0s");
      } else {
        const double remaining = secs / static_cast<double>(done) *
                                 static_cast<double>(total_jobs - done);
        std::snprintf(eta, sizeof eta, "%.0fs", remaining);
      }
      std::fprintf(stderr,
                   "[campaign] %zu/%zu trials | %.1f rounds/s | eta %s | "
                   "rss %.1f MB\n",
                   done, total_jobs, rate, eta, obs::current_rss_mb());
    });
  }

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  heartbeat.stop();
  if (first_error) std::rethrow_exception(first_error);

  if (cancelled.load(std::memory_order_relaxed)) {
    result.cancelled = true;
    return result;
  }

  CampaignGrid grid;
  grid.reserve(prepared.size());
  for (const PreparedScenario& p : prepared) {
    grid.emplace_back(p.spec->name, p.trials);
  }
  result.summaries =
      summarize_trials(result.trials, grid, config.measure_wall_time);
  return result;
}

const ScenarioSummary* find_summary(const CampaignResult& result,
                                    std::string_view name) {
  for (const ScenarioSummary& s : result.summaries) {
    if (s.scenario == name) return &s;
  }
  return nullptr;
}

}  // namespace dualrad::campaign
