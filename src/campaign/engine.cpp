#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <set>
#include <string_view>
#include <thread>

#include "core/rng.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"

namespace dualrad::campaign {

namespace {

[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// One scenario with its network and factory built (once, serially).
struct PreparedScenario {
  const Scenario* spec = nullptr;
  DualGraph net;
  ProcessFactory factory;
  std::uint64_t stream = 0;
  std::size_t trials = 0;
  std::size_t first_job = 0;  ///< index of trial 0 in the flat job list
};

}  // namespace

std::uint64_t scenario_stream(std::uint64_t master_seed,
                              std::string_view name) {
  return mix_seed(master_seed, fnv1a64(name));
}

std::uint64_t trial_seed(std::uint64_t master_seed, std::string_view name,
                         std::size_t trial) {
  return mix_seed(scenario_stream(master_seed, name),
                  static_cast<std::uint64_t>(trial));
}

CampaignResult run_campaign(const std::vector<Scenario>& scenarios,
                            const CampaignConfig& config) {
  std::vector<PreparedScenario> prepared;
  prepared.reserve(scenarios.size());
  std::size_t total_jobs = 0;
  std::set<std::string_view> names;
  for (const Scenario& s : scenarios) {
    // Duplicate names would share a seed stream (correlated trials) and
    // collide in find_summary; reject them even when the caller bypassed a
    // ScenarioRegistry.
    DUALRAD_REQUIRE(names.insert(s.name).second,
                    "duplicate scenario name in campaign: " + s.name);
    DUALRAD_REQUIRE(static_cast<bool>(s.network) &&
                        static_cast<bool>(s.algorithm) &&
                        static_cast<bool>(s.adversary),
                    "scenario '" + s.name + "' has unset builders");
    DualGraph net = s.network();
    ProcessFactory factory = s.algorithm(net);
    DUALRAD_REQUIRE(static_cast<bool>(factory),
                    "scenario '" + s.name + "' built a null process factory");
    const std::size_t trials =
        config.trials_override != 0 ? config.trials_override : s.trials;
    DUALRAD_REQUIRE(trials >= 1,
                    "scenario '" + s.name + "' needs at least one trial");
    prepared.push_back(PreparedScenario{
        &s, std::move(net), std::move(factory),
        scenario_stream(config.master_seed, s.name), trials, total_jobs});
    total_jobs += trials;
  }

  CampaignResult result;
  result.trials.resize(total_jobs);
  if (config.collect_telemetry) result.telemetry.resize(total_jobs);

  // job id -> scenario index, so workers claim jobs with one atomic fetch.
  std::vector<std::size_t> scenario_of_job(total_jobs);
  for (std::size_t si = 0; si < prepared.size(); ++si) {
    for (std::size_t t = 0; t < prepared[si].trials; ++t) {
      scenario_of_job[prepared[si].first_job + t] = si;
    }
  }

  std::atomic<std::size_t> next_job{0};
  std::atomic<std::size_t> jobs_done{0};
  std::atomic<std::uint64_t> rounds_done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex observer_mutex;

  const auto run_one = [&](std::size_t job) {
    const PreparedScenario& p = prepared[scenario_of_job[job]];
    const std::size_t trial = job - p.first_job;
    const std::uint64_t seed =
        mix_seed(p.stream, static_cast<std::uint64_t>(trial));

    // Fresh adversary per trial: stateful adversaries start clean, and no
    // Adversary instance is ever shared between workers.
    const std::unique_ptr<Adversary> adversary =
        p.spec->adversary(mix_seed(seed, 0xAD));
    DUALRAD_CHECK(adversary != nullptr, "adversary factory returned null");

    SimConfig sim;
    sim.rule = p.spec->rule;
    sim.start = p.spec->start;
    sim.max_rounds = p.spec->max_rounds;
    sim.seed = seed;
    sim.token_sources = p.spec->token_sources;
    sim.threads = config.threads_per_trial;
    // One telemetry registry per trial, attached out-of-band. Window 1: the
    // campaign keeps only whole-execution totals, so the per-round ring can
    // be minimal.
    obs::RoundTelemetry telemetry(1);
    if (config.collect_telemetry) sim.telemetry = &telemetry;
    const auto started = std::chrono::steady_clock::now();
    const SimResult run =
        p.spec->runner ? p.spec->runner(p.net, p.factory, *adversary, sim)
                       : run_broadcast(p.net, p.factory, *adversary, sim);
    const auto elapsed = std::chrono::steady_clock::now() - started;

    TrialRow& row = result.trials[job];
    row.scenario = p.spec->name;
    row.trial = static_cast<std::uint32_t>(trial);
    row.seed = seed;
    row.completed = run.completed;
    row.rounds = run.completed ? run.completion_round : kNever;
    row.rounds_executed = run.rounds_executed;
    row.sends = run.total_sends;
    row.collisions = run.total_collision_events;
    row.tokens = std::max<std::int32_t>(run.token_count(), 1);
    if (config.measure_wall_time) {
      row.wall_us =
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count();
    }

    if (config.collect_telemetry) {
      TelemetryRow& t = result.telemetry[job];
      t.scenario = p.spec->name;
      t.trial = static_cast<std::uint32_t>(trial);
      t.wall_us =
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count();
      t.poll_ns = telemetry.total_phase_ns(obs::Phase::Poll);
      t.adversary_ns = telemetry.total_phase_ns(obs::Phase::Adversary);
      t.propagate_ns = telemetry.total_phase_ns(obs::Phase::Propagate);
      t.deliver_ns = telemetry.total_phase_ns(obs::Phase::Deliver);
      t.merge_ns = telemetry.total_phase_ns(obs::Phase::ShardMerge);
      const obs::RoundCounters& c = telemetry.totals();
      t.polled = c.polled;
      t.senders = c.senders;
      t.deliveries = c.deliveries;
      t.collisions = c.collisions;
      t.calendar_scanned = c.calendar_scanned;
      t.replans = c.replans;
      t.reach_appends = c.reach_appends;
      t.newly_covered = c.newly_covered;
      t.max_round_deliveries = telemetry.max_round_deliveries();
    }

    if (config.observer) {
      const std::lock_guard<std::mutex> lock(observer_mutex);
      config.observer(*p.spec, row, run);
    }

    rounds_done.fetch_add(static_cast<std::uint64_t>(run.rounds_executed),
                          std::memory_order_relaxed);
    jobs_done.fetch_add(1, std::memory_order_relaxed);
  };

  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t job = next_job.fetch_add(1, std::memory_order_relaxed);
      if (job >= total_jobs) return;
      try {
        run_one(job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  unsigned threads = config.threads != 0 ? config.threads
                                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(total_jobs, 1)));

  // Progress heartbeat: one line to stderr every heartbeat_secs while trials
  // run. Reads only the progress atomics and /proc RSS — never results.
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat;
  if (config.heartbeat_secs > 0) {
    heartbeat = std::thread([&] {
      const auto t0 = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(hb_mutex);
      while (!hb_cv.wait_for(lock,
                             std::chrono::seconds(config.heartbeat_secs),
                             [&] { return hb_stop; })) {
        const std::size_t done = jobs_done.load(std::memory_order_relaxed);
        const std::uint64_t rounds =
            rounds_done.load(std::memory_order_relaxed);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const double rate =
            secs > 0.0 ? static_cast<double>(rounds) / secs : 0.0;
        char eta[32];
        if (done == 0) {
          std::snprintf(eta, sizeof eta, "?");
        } else if (done >= total_jobs) {
          std::snprintf(eta, sizeof eta, "0s");
        } else {
          const double remaining =
              secs / static_cast<double>(done) *
              static_cast<double>(total_jobs - done);
          std::snprintf(eta, sizeof eta, "%.0fs", remaining);
        }
        std::fprintf(stderr,
                     "[campaign] %zu/%zu trials | %.1f rounds/s | eta %s | "
                     "rss %.1f MB\n",
                     done, total_jobs, rate, eta, obs::current_rss_mb());
      }
    });
  }

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (heartbeat.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(hb_mutex);
      hb_stop = true;
    }
    hb_cv.notify_one();
    heartbeat.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  result.summaries.reserve(prepared.size());
  for (const PreparedScenario& p : prepared) {
    ScenarioSummary summary;
    summary.scenario = p.spec->name;
    summary.trials = p.trials;
    std::vector<double> rounds;
    double sends = 0.0, collisions = 0.0, wall_us = 0.0;
    for (std::size_t t = 0; t < p.trials; ++t) {
      const TrialRow& row = result.trials[p.first_job + t];
      if (row.completed) {
        rounds.push_back(static_cast<double>(row.rounds));
      } else {
        ++summary.failures;
      }
      sends += static_cast<double>(row.sends);
      collisions += static_cast<double>(row.collisions);
      wall_us += static_cast<double>(row.wall_us);
    }
    summary.rounds = stats::summarize(std::move(rounds));
    summary.mean_sends = sends / static_cast<double>(p.trials);
    summary.mean_collisions = collisions / static_cast<double>(p.trials);
    if (config.measure_wall_time) {
      summary.mean_wall_ms = wall_us / 1000.0 / static_cast<double>(p.trials);
    }
    result.summaries.push_back(std::move(summary));
  }
  return result;
}

const ScenarioSummary* find_summary(const CampaignResult& result,
                                    std::string_view name) {
  for (const ScenarioSummary& s : result.summaries) {
    if (s.scenario == name) return &s;
  }
  return nullptr;
}

}  // namespace dualrad::campaign
