#pragma once

#include <string>
#include <vector>

#include "campaign/engine.hpp"

/// \file export.hpp
/// Serialization of campaign results: JSONL (one object per line) and CSV,
/// for per-trial rows and per-scenario summaries, plus parsers for the trial
/// formats (used by round-trip tests and downstream tooling).
///
/// Output is a pure function of the rows: fixed key order, fixed number
/// formatting ("%.*g" for doubles, decimal for integers), "\n" line endings.
/// Combined with the engine's determinism contract this makes whole exported
/// files bit-identical across runs and worker counts.

namespace dualrad::campaign {

/// Per-trial JSONL. Keys per line: scenario, trial, seed, completed, rounds,
/// rounds_executed, sends, collisions, tokens — plus wall_us when
/// `include_timing` is set. Timing is opt-in because wall time varies run to
/// run: files written without it stay byte-identical across worker counts
/// and machines (the determinism contract); files written with it do not.
[[nodiscard]] std::string trials_to_jsonl(const std::vector<TrialRow>& rows,
                                          bool include_timing = false);

/// Per-trial CSV with header
/// scenario,trial,seed,completed,rounds,rounds_executed,sends,collisions,
/// tokens[,wall_us]. Same timing opt-in as trials_to_jsonl.
[[nodiscard]] std::string trials_to_csv(const std::vector<TrialRow>& rows,
                                        bool include_timing = false);

/// Per-scenario summary JSONL. Keys: scenario, trials, failures,
/// mean_rounds, stddev_rounds, min_rounds, max_rounds, median_rounds,
/// p90_rounds, mean_sends, mean_collisions — plus mean_wall_ms when
/// `include_timing` is set. Round statistics are -1 when no trial completed.
[[nodiscard]] std::string summaries_to_jsonl(
    const std::vector<ScenarioSummary>& summaries, bool include_timing = false);

[[nodiscard]] std::string summaries_to_csv(
    const std::vector<ScenarioSummary>& summaries, bool include_timing = false);

/// Inverse of trials_to_jsonl. Throws std::invalid_argument on malformed
/// input (missing key, truncated line, non-numeric field). The tokens and
/// wall_us keys are optional on input (defaults 1 and -1) so pre-multi-token
/// and untimed exports keep parsing.
[[nodiscard]] std::vector<TrialRow> trials_from_jsonl(const std::string& text);

/// Inverse of trials_to_csv (expects the header line; accepts the legacy
/// 8-column, the 9-column, and the timed 10-column layouts).
[[nodiscard]] std::vector<TrialRow> trials_from_csv(const std::string& text);

/// Per-trial telemetry JSONL (CampaignResult::telemetry). Keys per line:
/// scenario, trial, wall_us, poll_ns, adversary_ns, propagate_ns,
/// deliver_ns, merge_ns, polled, senders, deliveries, collisions,
/// calendar_scanned, replans, reach_appends, newly_covered,
/// max_round_deliveries. This stream is opt-in and — unlike the default
/// trial exports — inherently nondeterministic (it carries wall times); the
/// counter totals in it ARE deterministic.
[[nodiscard]] std::string telemetry_to_jsonl(
    const std::vector<TelemetryRow>& rows);

/// Inverse of telemetry_to_jsonl. Only scenario and trial are required:
/// wall_us defaults to -1 and every telemetry counter to 0, so legacy lines
/// that carry wall_us but predate the telemetry columns still parse.
[[nodiscard]] std::vector<TelemetryRow> telemetry_from_jsonl(
    const std::string& text);

/// Write `content` to `path` (truncating). Throws std::runtime_error on I/O
/// failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace dualrad::campaign
