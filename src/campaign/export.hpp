#pragma once

#include <string>
#include <vector>

#include "campaign/engine.hpp"

/// \file export.hpp
/// Serialization of campaign results: JSONL (one object per line) and CSV,
/// for per-trial rows and per-scenario summaries, plus parsers for the trial
/// formats (used by round-trip tests and downstream tooling).
///
/// Output is a pure function of the rows: fixed key order, fixed number
/// formatting ("%.*g" for doubles, decimal for integers), "\n" line endings.
/// Combined with the engine's determinism contract this makes whole exported
/// files bit-identical across runs and worker counts.

namespace dualrad::campaign {

/// Per-trial JSONL. Keys per line: scenario, trial, seed, completed, rounds,
/// rounds_executed, sends, collisions.
[[nodiscard]] std::string trials_to_jsonl(const std::vector<TrialRow>& rows);

/// Per-trial CSV with header
/// scenario,trial,seed,completed,rounds,rounds_executed,sends,collisions.
[[nodiscard]] std::string trials_to_csv(const std::vector<TrialRow>& rows);

/// Per-scenario summary JSONL. Keys: scenario, trials, failures,
/// mean_rounds, stddev_rounds, min_rounds, max_rounds, median_rounds,
/// p90_rounds, mean_sends, mean_collisions. Round statistics are -1 when no
/// trial completed.
[[nodiscard]] std::string summaries_to_jsonl(
    const std::vector<ScenarioSummary>& summaries);

[[nodiscard]] std::string summaries_to_csv(
    const std::vector<ScenarioSummary>& summaries);

/// Inverse of trials_to_jsonl. Throws std::invalid_argument on malformed
/// input (missing key, non-numeric field).
[[nodiscard]] std::vector<TrialRow> trials_from_jsonl(const std::string& text);

/// Inverse of trials_to_csv (expects the header line).
[[nodiscard]] std::vector<TrialRow> trials_from_csv(const std::string& text);

/// Write `content` to `path` (truncating). Throws std::runtime_error on I/O
/// failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace dualrad::campaign
