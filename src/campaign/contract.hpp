#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/engine.hpp"

/// \file contract.hpp
/// The classic broadcast-contract checker, adapted from the delivery spec of
/// uniform reliable broadcast (validity / no-duplication / no-creation /
/// agreement) to the radio-network simulator's observables. Checked per
/// trial over SimResult::token_first:
///
///  - no-creation: no token is delivered unless it was injected — the
///    execution carries exactly the configured token set, and each token has
///    exactly one environment injection (one node holding it at round 0, the
///    configured source when the scenario names one). Under Byzantine node
///    faults (src/byz/) this also covers forged tokens: a forged token that
///    *won* — was accepted and relayed by a correct node, per
///    SimResult::forged_tokens — is reported with the token id, forger,
///    first relaying node, and round.
///  - no-duplication: each (node, token) has a single well-formed first
///    delivery: rounds in [0, rounds_executed] or kNever, and the
///    single-token view (first_token) is consistent with token_first[0].
///  - validity / agreement: completion is truthful — the execution reports
///    completed iff every process holds every token, and the completion
///    round is exactly the last first-delivery. (Agreement is an eventual
///    property; executions truncated by max_rounds are not violations.)
///
/// Wired as a CampaignConfig observer so any campaign — batch or serve-mode
/// worker — can assert the contract out-of-band without touching results.

namespace dualrad::campaign {

/// Violations found in one trial, as human-readable "property: detail"
/// strings; empty means the trial satisfies the contract.
[[nodiscard]] std::vector<std::string> check_broadcast_contract(
    const Scenario& scenario, const TrialRow& row, const SimResult& result);

/// Observer adapter: collects violations across all trials of a campaign.
/// attach() chains any observer already present in the config. Thread-safe
/// (the engine serializes observers, but serve-mode workers may not).
class ContractObserver {
 public:
  /// Install this observer into `config`, chaining a pre-existing one.
  /// The observer must outlive the campaign run.
  void attach(CampaignConfig& config);

  /// Record violations of one trial directly (the serve-mode worker path).
  void record(const Scenario& scenario, const TrialRow& row,
              const SimResult& result);

  [[nodiscard]] std::vector<std::string> violations() const;
  [[nodiscard]] std::size_t trials_checked() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> violations_;
  std::size_t trials_checked_ = 0;
};

}  // namespace dualrad::campaign
