#include "campaign/registry.hpp"

#include <algorithm>
#include <cctype>

namespace dualrad::campaign {

bool is_valid_scenario_name(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
           c == '_' || c == '/' || c == '+' || c == ':' || c == '=' ||
           c == '-';
  });
}

void ScenarioRegistry::add(Scenario scenario) {
  DUALRAD_REQUIRE(is_valid_scenario_name(scenario.name),
                  "scenario name must be non-empty over [A-Za-z0-9._/+:=-]");
  DUALRAD_REQUIRE(!contains(scenario.name),
                  "scenario name already registered: " + scenario.name);
  DUALRAD_REQUIRE(static_cast<bool>(scenario.network),
                  "scenario needs a network builder");
  DUALRAD_REQUIRE(static_cast<bool>(scenario.algorithm),
                  "scenario needs an algorithm builder");
  DUALRAD_REQUIRE(static_cast<bool>(scenario.adversary),
                  "scenario needs an adversary factory");
  DUALRAD_REQUIRE(scenario.trials >= 1, "scenario needs at least one trial");
  DUALRAD_REQUIRE(scenario.max_rounds >= 1, "max_rounds must be positive");
  scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return std::any_of(scenarios_.begin(), scenarios_.end(),
                     [&](const Scenario& s) { return s.name == name; });
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("dualrad: unknown scenario: " +
                              std::string(name));
}

std::vector<Scenario> ScenarioRegistry::match(std::string_view filter) const {
  std::vector<Scenario> out;
  for (const Scenario& s : scenarios_) {
    const bool hit =
        filter.empty() || s.name.find(filter) != std::string::npos ||
        std::any_of(s.tags.begin(), s.tags.end(), [&](const std::string& t) {
          return t.find(filter) != std::string::npos;
        });
    if (hit) out.push_back(s);
  }
  return out;
}

}  // namespace dualrad::campaign
