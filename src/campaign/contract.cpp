#include "campaign/contract.hpp"

#include <algorithm>
#include <utility>

namespace dualrad::campaign {

namespace {

void violation(std::vector<std::string>& out, const TrialRow& row,
               const char* property, std::string detail) {
  out.push_back(row.scenario + "#" + std::to_string(row.trial) + " " +
                property + ": " + std::move(detail));
}

}  // namespace

std::vector<std::string> check_broadcast_contract(const Scenario& scenario,
                                                  const TrialRow& row,
                                                  const SimResult& result) {
  std::vector<std::string> out;

  // --- no-creation: the token set is exactly what the environment injected.
  const std::size_t expected_tokens =
      scenario.token_sources.empty() ? 1 : scenario.token_sources.size();
  if (result.token_first.size() != expected_tokens) {
    violation(out, row, "no-creation",
              "execution carries " + std::to_string(result.token_first.size()) +
                  " tokens, " + std::to_string(expected_tokens) + " injected");
    return out;  // the per-token checks below would index out of range
  }

  const Round horizon = result.rounds_executed;
  Round last_delivery = 0;
  bool all_delivered = true;
  for (std::size_t i = 0; i < result.token_first.size(); ++i) {
    const std::vector<Round>& first = result.token_first[i];
    std::size_t origins = 0;
    for (std::size_t v = 0; v < first.size(); ++v) {
      const Round r = first[v];
      if (r == 0) ++origins;
      if (r == kNever) {
        all_delivered = false;
        continue;
      }
      // no-duplication: one well-formed first delivery per (node, token).
      if (r < 0 || r > horizon) {
        violation(out, row, "no-duplication",
                  "token " + std::to_string(i + 1) + " at node " +
                      std::to_string(v) + " has first round " +
                      std::to_string(r) + " outside [0, " +
                      std::to_string(horizon) + "]");
      }
      last_delivery = std::max(last_delivery, r);
    }
    // no-creation: exactly one environment injection per token — deliveries
    // only happen at rounds >= 1, so a second round-0 holder means a token
    // appeared out of thin air.
    if (origins != 1) {
      violation(out, row, "no-creation",
                "token " + std::to_string(i + 1) + " has " +
                    std::to_string(origins) + " round-0 origins (want 1)");
    }
    if (!scenario.token_sources.empty()) {
      const NodeId src = scenario.token_sources[i];
      if (src < 0 || static_cast<std::size_t>(src) >= first.size() ||
          first[static_cast<std::size_t>(src)] != 0) {
        violation(out, row, "no-creation",
                  "token " + std::to_string(i + 1) +
                      " does not originate at its configured source node " +
                      std::to_string(src));
      }
    }
  }

  // --- no-creation, node-fault edition (src/byz/): a forged token *winning*
  // — some protocol-following node accepting and relaying it — is delivery
  // of a token the environment never injected. The engine keeps forged ids
  // out of token_first, so the provenance records are where the breach
  // shows, with the exact token, forger, first relaying node, and round.
  for (const ForgedTokenRecord& f : result.forged_tokens) {
    if (!f.won()) continue;
    violation(out, row, "no-creation",
              "forged token " + std::to_string(f.token) + " (forger node " +
                  std::to_string(f.forger) + ") won: first relayed by node " +
                  std::to_string(f.first_victim) + " at round " +
                  std::to_string(f.first_victim_round) + ", " +
                  std::to_string(f.injections) + " injections, " +
                  std::to_string(f.victim_sends) + " victim sends, " +
                  std::to_string(f.receptions) + " receptions");
  }

  // Single-token API consistency: first_token is an alias of token_first[0].
  if (!result.token_first.empty() &&
      result.first_token != result.token_first.front()) {
    violation(out, row, "no-duplication",
              "first_token diverges from token_first[0]");
  }

  // --- validity / agreement: completion is truthful. If any process
  // delivered and the run claims completion, all did (uniform agreement);
  // a run that claims completion without full delivery violates validity.
  if (result.completed != all_delivered) {
    violation(out, row, "validity",
              result.completed
                  ? "reported completed but some (node, token) never delivered"
                  : "all (node, token) delivered but not reported completed");
  }
  if (result.completed && result.completion_round != last_delivery) {
    violation(out, row, "agreement",
              "completion round " + std::to_string(result.completion_round) +
                  " != last first-delivery " + std::to_string(last_delivery));
  }
  if (row.completed != result.completed) {
    violation(out, row, "validity",
              "exported row disagrees with SimResult on completion");
  }
  return out;
}

void ContractObserver::attach(CampaignConfig& config) {
  auto previous = std::move(config.observer);
  config.observer = [this, previous = std::move(previous)](
                        const Scenario& scenario, const TrialRow& row,
                        const SimResult& result) {
    if (previous) previous(scenario, row, result);
    record(scenario, row, result);
  };
}

void ContractObserver::record(const Scenario& scenario, const TrialRow& row,
                              const SimResult& result) {
  std::vector<std::string> found =
      check_broadcast_contract(scenario, row, result);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++trials_checked_;
  violations_.insert(violations_.end(),
                     std::make_move_iterator(found.begin()),
                     std::make_move_iterator(found.end()));
}

std::vector<std::string> ContractObserver::violations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return violations_;
}

std::size_t ContractObserver::trials_checked() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trials_checked_;
}

}  // namespace dualrad::campaign
