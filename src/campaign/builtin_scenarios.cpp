#include "campaign/builtin_scenarios.hpp"

#include <algorithm>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "byz/byz_scenarios.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "mac/mac_scenarios.hpp"

namespace dualrad::campaign {

namespace {

// Network builders. Sizes are chosen so the full catalogue runs in seconds
// to low minutes; the campaign CLI's --trials flag scales sampling up.

[[nodiscard]] NetworkBuilder layered(NodeId layers, NodeId width) {
  return [layers, width] {
    return duals::layered_complete_gprime(layers, width);
  };
}

[[nodiscard]] NetworkBuilder classical_bridge(NodeId n) {
  return [n] { return duals::strip_unreliable(duals::bridge_network(n)); };
}

[[nodiscard]] NetworkBuilder gray_zone(NodeId n, std::uint64_t seed) {
  return [n, seed] {
    return duals::gray_zone(
        {.n = n, .r_reliable = 0.22, .r_gray = 0.55, .seed = seed});
  };
}

[[nodiscard]] NetworkBuilder backbone(NodeId n, std::uint64_t seed) {
  return [n, seed] {
    return duals::backbone_plus_unreliable(
        {.n = n, .p_reliable = 0.05, .p_unreliable = 0.2, .seed = seed});
  };
}

// Large-n families for the scale/* grid: bounded degree, O(n) memory.

[[nodiscard]] NetworkBuilder scale_layered(NodeId layers, NodeId width) {
  return [layers, width] {
    return duals::layered_sparse({.layers = layers,
                                  .width = width,
                                  .fwd_degree = 3,
                                  .unreliable_degree = 2,
                                  .seed = 17});
  };
}

[[nodiscard]] NetworkBuilder scale_grayzone(NodeId n) {
  return [n] {
    return duals::gray_zone_grid(
        {.n = n, .mean_degree = 12.0, .gray_factor = 1.5, .seed = 17});
  };
}

// Algorithm builders.

[[nodiscard]] AlgorithmBuilder round_robin() {
  return [](const DualGraph& net) {
    return make_round_robin_factory(net.node_count());
  };
}

[[nodiscard]] AlgorithmBuilder strong_select() {
  return [](const DualGraph& net) {
    return make_strong_select_factory(net.node_count());
  };
}

[[nodiscard]] AlgorithmBuilder harmonic(double eps = 0.1) {
  return [eps](const DualGraph& net) {
    return make_harmonic_factory(net.node_count(), {.eps = eps});
  };
}

[[nodiscard]] AlgorithmBuilder decay() {
  return [](const DualGraph& net) {
    return make_decay_factory(net.node_count());
  };
}

/// Duty-cycled Decay (BGI-style bounded windows plus periodic maintenance
/// beacons): a node runs the decay schedule for `active_phases` phases
/// after first receiving the token, then for one phase in every
/// `rebroadcast_period`. Completion stays certain (beacons recur forever)
/// while steady-state rounds carry only the frontier plus a thin beacon
/// trickle — the sparse-engine regime the scale/* scenarios exercise.
[[nodiscard]] AlgorithmBuilder decay_windowed(Round active_phases,
                                              Round rebroadcast_period) {
  return [active_phases, rebroadcast_period](const DualGraph& net) {
    return make_decay_factory(net.node_count(),
                              {.active_phases = active_phases,
                               .rebroadcast_period = rebroadcast_period});
  };
}

[[nodiscard]] AlgorithmBuilder gossip() {
  return [](const DualGraph& net) {
    return make_uniform_gossip_factory(net.node_count());
  };
}

[[nodiscard]] AlgorithmBuilder cms() {
  return [](const DualGraph& net) {
    // The CSR snapshot answers max_in_degree without materializing a Graph
    // view (CSR-built networks have none until asked).
    return make_cms_oblivious_factory(
        net.node_count(),
        {.delta = static_cast<NodeId>(net.g_prime_csr().max_in_degree())});
  };
}

// Adversary factories.

[[nodiscard]] AdversaryFactory benign() {
  return make_adversary_factory<BenignAdversary>();
}

[[nodiscard]] AdversaryFactory greedy() {
  return make_adversary_factory<GreedyBlockerAdversary>();
}

[[nodiscard]] AdversaryFactory full_interference() {
  return make_adversary_factory<FullInterferenceAdversary>();
}

[[nodiscard]] AdversaryFactory bernoulli(double p) {
  return make_seeded_adversary_factory<BernoulliAdversary>(p);
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  // --- Classical-model baselines (G == G', benign channel). ---
  registry.add({.name = "classical/round-robin/bridge/benign",
                .description = "Deterministic O(n) baseline: round robin on "
                               "the diameter-2 bridge topology (Table 1, "
                               "classical row)",
                .tags = {"classical", "deterministic", "table1", "quick"},
                .network = classical_bridge(33),
                .algorithm = round_robin(),
                .adversary = benign(),
                .rule = CollisionRule::CR3,
                .start = StartRule::Synchronous,
                .max_rounds = 1'000'000,
                .trials = 1});

  registry.add({.name = "classical/decay/bridge/benign",
                .description = "Randomized polylog baseline: BGI Decay on the "
                               "classical bridge topology (Table 2, classical "
                               "row)",
                .tags = {"classical", "randomized", "table2", "quick"},
                .network = classical_bridge(33),
                .algorithm = decay(),
                .adversary = benign(),
                .rule = CollisionRule::CR3,
                .start = StartRule::Synchronous,
                .max_rounds = 1'000'000,
                .trials = 5});

  registry.add({.name = "classical/gossip/clique/benign",
                .description = "Uniform gossip with p = 1/(n-1) on a clique: "
                               "the ~e*n solo-isolation curve under the "
                               "Theorem 4 ceiling",
                .tags = {"classical", "randomized", "theorem4", "quick"},
                .network = [] { return make_classical(gen::clique(33), 0); },
                .algorithm = gossip(),
                .adversary = benign(),
                .rule = CollisionRule::CR3,
                .start = StartRule::Synchronous,
                .max_rounds = 1'000'000,
                .trials = 5});

  // --- Deterministic algorithms on dual graphs. ---
  registry.add({.name = "dual/round-robin/layered/full-interference",
                .description = "Round robin is adversary-proof (each covered "
                               "node is isolated once every n rounds): full "
                               "interference on the layered family",
                .tags = {"dual", "deterministic", "section4", "quick"},
                .network = layered(8, 4),
                .algorithm = round_robin(),
                .adversary = full_interference(),
                .trials = 1});

  registry.add({.name = "dual/strong-select/layered/greedy",
                .description = "Strong Select (Section 5) vs the greedy "
                               "collision-blocker on the layered "
                               "complete-G' family",
                .tags = {"dual", "deterministic", "table1", "section5"},
                .network = layered(8, 4),
                .algorithm = strong_select(),
                .adversary = greedy(),
                .trials = 1});

  registry.add({.name = "dual/strong-select/layered/bernoulli:0.5",
                .description = "Strong Select under stochastic link firing "
                               "(each unreliable edge fires w.p. 1/2)",
                .tags = {"dual", "deterministic", "section5"},
                .network = layered(8, 4),
                .algorithm = strong_select(),
                .adversary = bernoulli(0.5),
                .trials = 5});

  registry.add({.name = "dual/strong-select/grayzone/greedy",
                .description = "Strong Select on the geometric gray-zone "
                               "family vs the greedy blocker",
                .tags = {"dual", "deterministic", "grayzone"},
                .network = gray_zone(48, 7),
                .algorithm = strong_select(),
                .adversary = greedy(),
                .trials = 1});

  registry.add({.name = "dual/cms/layered/greedy",
                .description = "CMS oblivious baseline (Section 2.2, knows "
                               "Delta) vs the greedy blocker",
                .tags = {"dual", "deterministic", "section2.2", "quick"},
                .network = layered(8, 4),
                .algorithm = cms(),
                .adversary = greedy(),
                .trials = 1});

  // --- Randomized algorithms on dual graphs. ---
  registry.add({.name = "dual/harmonic/layered/greedy",
                .description = "Harmonic Broadcast (Section 7) vs the greedy "
                               "blocker: the ~n log^2 n upper-bound workload",
                .tags = {"dual", "randomized", "table2", "section7"},
                .network = layered(8, 4),
                .algorithm = harmonic(),
                .adversary = greedy(),
                .max_rounds = 20'000'000,
                .trials = 5});

  registry.add({.name = "dual/harmonic/layered/full-interference",
                .description = "Harmonic Broadcast under blanket unreliable "
                               "interference",
                .tags = {"dual", "randomized", "section7"},
                .network = layered(8, 4),
                .algorithm = harmonic(),
                .adversary = full_interference(),
                .max_rounds = 20'000'000,
                .trials = 5});

  registry.add({.name = "dual/harmonic/grayzone/bernoulli:0.3",
                .description = "Harmonic Broadcast on the gray-zone family "
                               "with stochastic gray links",
                .tags = {"dual", "randomized", "grayzone", "section7"},
                .network = gray_zone(48, 7),
                .algorithm = harmonic(),
                .adversary = bernoulli(0.3),
                .max_rounds = 20'000'000,
                .trials = 5});

  registry.add({.name = "dual/harmonic/backbone/bernoulli:0.5",
                .description = "Harmonic Broadcast on a reliable backbone "
                               "plus stochastic unreliable extras",
                .tags = {"dual", "randomized", "backbone", "section7"},
                .network = backbone(48, 11),
                .algorithm = harmonic(),
                .adversary = bernoulli(0.5),
                .max_rounds = 20'000'000,
                .trials = 5});

  registry.add({.name = "dual/gossip/layered/bernoulli:0.5",
                .description = "Uniform gossip on the layered family with "
                               "stochastic unreliable links",
                .tags = {"dual", "randomized"},
                .network = layered(8, 4),
                .algorithm = gossip(),
                .adversary = bernoulli(0.5),
                .max_rounds = 2'000'000,
                .trials = 5});

  registry.add({.name = "dual/decay/layered/greedy",
                .description = "Decay carries no dual-graph guarantee "
                               "(Table 2's contrast): the greedy blocker can "
                               "starve it, so trials may hit the round cap",
                .tags = {"dual", "randomized", "table2", "negative"},
                .network = layered(8, 4),
                .algorithm = decay(),
                .adversary = greedy(),
                .max_rounds = 100'000,
                .trials = 3});

  // --- Engine-scaling workloads: 10^3..10^6 nodes on sparse families. ---
  // Decay under asynchronous start keeps the awake set equal to the covered
  // set, which is exactly the regime the sparse CSR engine is built for;
  // bench_engine_scaling measures these same scenarios against the dense
  // reference engine (and, at 100k+, the serial kernel against the sharded
  // parallel one). The 100k instances are tagged "slow" and the 10^6
  // instances additionally "1m" so quick filters skip them; one trial each
  // keeps a full-catalogue run tractable.
  struct ScalePoint {
    const char* label;
    NetworkBuilder network;
    std::size_t trials;
    bool slow;
    bool huge;
  };
  const ScalePoint scale_points[] = {
      {"layered-1k", scale_layered(50, 20), 3, false, false},
      {"layered-10k", scale_layered(125, 80), 2, false, false},
      {"layered-100k", scale_layered(250, 400), 1, true, false},
      {"layered-1m", scale_layered(500, 2'000), 1, true, true},
      {"grayzone-1k", scale_grayzone(1'000), 3, false, false},
      {"grayzone-10k", scale_grayzone(10'000), 2, false, false},
      {"grayzone-100k", scale_grayzone(100'000), 1, true, false},
      {"grayzone-1m", scale_grayzone(1'000'000), 1, true, true},
  };
  struct ScaleChannel {
    const char* label;
    AdversaryFactory adversary;
    const char* blurb;
    bool adversarial;
  };
  const ScaleChannel scale_channels[] = {
      {"benign", benign(), " family over reliable links only", false},
      {"bernoulli:0.1", bernoulli(0.1),
       " family with stochastic unreliable links", false},
      // The sparse frontier blocker (O(boundary) per round, no per-round
      // allocations) is what makes a worst-case-shaped adversary viable at
      // 10^5-10^6 nodes — the workload PR 4's ROADMAP flagged as blocked.
      {"greedy", greedy(),
       " family against the sparse greedy collision-blocker", true},
  };
  for (const ScalePoint& point : scale_points) {
    for (const ScaleChannel& channel : scale_channels) {
      Scenario s;
      s.name = std::string("scale/decay/") + point.label + "/" + channel.label;
      s.description = std::string("Engine-scaling workload: Decay on the "
                                  "sparse ") +
                      point.label + channel.blurb;
      s.tags = {"scale", "randomized"};
      if (channel.adversarial) s.tags.push_back("adversarial");
      if (point.slow) s.tags.push_back("slow");
      if (point.huge) s.tags.push_back("1m");
      s.network = point.network;
      s.algorithm =
          decay_windowed(/*active_phases=*/2, /*rebroadcast_period=*/32);
      s.adversary = channel.adversary;
      // CR3 (collisions are silent) is the classic no-collision-detection
      // radio assumption and keeps the steady state adversary-callback-free
      // under the benign/bernoulli channels; under greedy it means a jammed
      // solo delivery is simply lost, the blocker's intended effect.
      s.rule = CollisionRule::CR3;
      s.max_rounds = 200'000;
      s.trials = point.trials;
      registry.add(std::move(s));
    }
  }

  // --- Multi-message broadcast over the abstract MAC layer (src/mac/). ---
  mac::register_mac_scenarios(registry);

  // --- Byzantine node faults vs certified propagation (src/byz/). ---
  byz::register_byz_scenarios(registry);
}

ScenarioRegistry builtin_registry() {
  ScenarioRegistry registry;
  register_builtin_scenarios(registry);
  return registry;
}

}  // namespace dualrad::campaign
