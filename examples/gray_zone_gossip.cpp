// Scenario: communication gray zones (paper intro, [24]).
//
// A sensor deployment has reliable short links and a halo of flaky
// longer-range links. Deployments usually run link-quality assessment (ETX
// [13]) and cull flaky links before running protocols. The dual graph model
// asks: what does it cost to keep them?
//
// This example runs Harmonic Broadcast three ways on the same deployment:
//   (a) flaky links kept, friendly radio conditions (benign adversary);
//   (b) flaky links kept, worst-case gray-zone behavior (greedy blocker);
//   (c) flaky links culled, ETX-style (classical network on G alone).
// and prints rounds + message cost for each, over several deployments.

#include <cstdio>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"

int main() {
  using namespace dualrad;

  std::printf("%-6s %-28s %10s %10s\n", "seed", "configuration", "rounds",
              "sends");
  for (std::uint64_t seed : {1, 2, 3}) {
    duals::GrayZoneParams params;
    params.n = 64;
    params.r_reliable = 0.22;
    params.r_gray = 0.55;
    params.seed = seed;
    const DualGraph net = duals::gray_zone(params);
    const DualGraph culled = duals::strip_unreliable(net);
    const ProcessFactory harmonic = make_harmonic_factory(net.node_count());

    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 5'000'000;
    config.seed = seed;

    BenignAdversary benign;
    GreedyBlockerAdversary greedy;

    const SimResult friendly = run_broadcast(net, harmonic, benign, config);
    const SimResult hostile = run_broadcast(net, harmonic, greedy, config);
    const SimResult etx = run_broadcast(culled, harmonic, benign, config);

    const auto row = [&](const char* name, const SimResult& result) {
      std::printf("%-6llu %-28s %10lld %10llu\n",
                  static_cast<unsigned long long>(seed), name,
                  static_cast<long long>(result.completion_round),
                  static_cast<unsigned long long>(result.total_sends));
    };
    row("gray links, friendly radio", friendly);
    row("gray links, worst case", hostile);
    row("gray links culled (ETX)", etx);
  }
  std::printf(
      "\ntakeaway: keeping gray-zone links costs little when conditions are\n"
      "friendly and the algorithm (harmonic broadcast) tolerates the worst\n"
      "case — the dual graph model's guarantee — while culling (ETX) simply\n"
      "forfeits whatever the flaky links could have delivered.\n");
  return 0;
}
