// Scenario: running a dual-graph algorithm on an explicit-interference
// network (Lemma 1 / Appendix A).
//
// Builds a (G_T, G_I) network where interference edges can only collide, not
// convey, and runs Strong Select twice: natively in the interference model,
// and in the dual graph (G = G_T, G' = G_I) driven by the Appendix A
// simulating adversary. Prints the first rounds of both traces side by side
// — they are identical, which is the content of Lemma 1.

#include <cstdio>
#include <string>

#include "algorithms/strong_select.hpp"
#include "core/simulator.hpp"
#include "graph/generators.hpp"
#include "interference/interference.hpp"

namespace {

std::string show(const dualrad::Reception& reception) {
  using dualrad::ReceptionKind;
  switch (reception.kind) {
    case ReceptionKind::Silence: return ".";
    case ReceptionKind::Collision: return "T";
    case ReceptionKind::Message:
      return "m" + std::to_string(reception.message->origin);
  }
  return "?";
}

}  // namespace

int main() {
  using namespace dualrad;

  // Ring with chordal interference from the hub.
  Graph gt = gen::cycle(10);
  Graph gi = gen::cycle(10);
  for (NodeId v = 2; v < 10; v += 2) gi.add_undirected_edge(0, v);
  const InterferenceNetwork inet(std::move(gt), std::move(gi), 0);
  const NodeId n = inet.node_count();
  const ProcessFactory factory = make_strong_select_factory(n);

  InterferenceConfig iconfig;
  iconfig.rule = CollisionRule::CR1;
  iconfig.max_rounds = 100'000;
  iconfig.trace = TraceLevel::Full;
  const auto interference = run_interference_broadcast(inet, factory, iconfig);

  const DualGraph dual = inet.to_dual();
  InterferenceSimAdversary adversary(inet, CollisionRule::CR1);
  SimConfig dconfig;
  dconfig.rule = CollisionRule::CR1;
  dconfig.start = StartRule::Synchronous;
  dconfig.max_rounds = 100'000;
  dconfig.trace = TraceLevel::Full;
  const auto dual_run = run_broadcast(dual, factory, adversary, dconfig);

  std::printf("interference model completed in %lld rounds;"
              " dual simulation in %lld rounds\n\n",
              static_cast<long long>(interference.completion_round),
              static_cast<long long>(dual_run.completion_round));

  std::printf("%-6s | %-40s | %-40s\n", "round", "interference receptions",
              "dual-graph receptions");
  const std::size_t show_rounds =
      std::min<std::size_t>(10, interference.trace.rounds.size());
  for (std::size_t r = 0; r < show_rounds; ++r) {
    std::string left, right;
    for (NodeId v = 0; v < n; ++v) {
      left += show(interference.trace.rounds[r].receptions[
                       static_cast<std::size_t>(v)]) + " ";
      right += show(dual_run.trace.rounds[r].receptions[
                        static_cast<std::size_t>(v)]) + " ";
    }
    std::printf("%-6zu | %-40s | %-40s\n", r + 1, left.c_str(), right.c_str());
  }
  std::printf("\n('.' silence, 'T' collision notification, 'mX' message from "
              "process X — columns match round for round, per Lemma 1)\n");
  return 0;
}
