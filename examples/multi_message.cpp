// Multi-message quickstart: k tokens at k sources, BMMB over the DecayMac
// abstract MAC layer, per-token coverage and measured MAC latencies.
//
//   $ ./example_multi_message
//
// Walks through the MAC-layer API: spread_token_sources,
// SimConfig::token_sources, make_bmmb_factory, SimResult::token_first, and
// measure_mac_latency.

#include <cstdio>

#include "adversary/basic_adversaries.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "mac/bmmb.hpp"
#include "mac/mac_latency.hpp"

int main() {
  using namespace dualrad;

  // The layered dual network: reliable layer-to-layer links, complete
  // unreliable overlay.
  const DualGraph net = duals::layered_complete_gprime(8, 4);
  const NodeId n = net.node_count();

  // Four broadcast tokens, originating at four spread sources (token 1 at
  // the network source). Completion = every process holds every token.
  const TokenId k = 4;
  SimConfig config;
  config.token_sources = mac::spread_token_sources(net, k);
  config.max_rounds = 500'000;

  // Each unreliable edge fires with probability 1/2 per round.
  BernoulliAdversary adversary(0.5, /*seed=*/2026);

  // BMMB: every process relays each token it obtains exactly once; the
  // DecayMac layer below resolves all channel contention.
  const SimResult result =
      run_broadcast(net, mac::make_bmmb_factory(n), adversary, config);

  std::printf("network: n=%d, k=%d tokens, completed=%s in %lld rounds\n", n,
              k, result.completed ? "yes" : "no",
              static_cast<long long>(result.completion_round));
  for (TokenId t = 0; t < result.token_count(); ++t) {
    Round last = 0;
    for (Round r : result.token_first[static_cast<std::size_t>(t)]) {
      if (r != kNever && r > last) last = r;
    }
    std::printf("  token %d from node %d: everyone covered by round %lld\n",
                t + 1, config.token_sources[static_cast<std::size_t>(t)],
                static_cast<long long>(last));
  }

  // The measured abstract-MAC latencies: f_ack from the processes' exported
  // metrics, f_prog reconstructed from the per-token coverage.
  const mac::MacLatencySummary latency = mac::measure_mac_latency(net, result);
  std::printf(
      "mac contract: %llu acks, f_ack max=%.0f mean=%.1f; "
      "f_prog max=%lld mean=%.1f over %llu samples\n",
      static_cast<unsigned long long>(latency.acks), latency.ack_max,
      latency.ack_mean, static_cast<long long>(latency.prog_max),
      latency.prog_mean, static_cast<unsigned long long>(latency.prog_samples));
  return 0;
}
