// Quickstart: build a dual graph network, run the paper's two algorithms
// against an adversary, and print what happened.
//
//   $ ./quickstart
//
// Walks through the core API: dual graph construction, process factories,
// adversaries, and the simulator.

#include <cstdio>

#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"

int main() {
  using namespace dualrad;

  // A "gray zone" radio network: nodes scattered in the unit square,
  // reliable links below one radius, flaky links up to a longer radius.
  duals::GrayZoneParams params;
  params.n = 48;
  params.r_reliable = 0.22;
  params.r_gray = 0.5;
  params.seed = 2026;
  const DualGraph net = duals::gray_zone(params);
  std::printf("network: n=%d reliable edges=%zu unreliable edges=%zu\n",
              net.node_count(), net.g().edge_count(),
              net.unreliable_edge_count());

  // The adversary controls when unreliable links deliver; the greedy blocker
  // fires them to convert solo deliveries into collisions.
  GreedyBlockerAdversary adversary;

  SimConfig config;
  config.rule = CollisionRule::CR4;        // weakest rule: no collision detection
  config.start = StartRule::Asynchronous;  // nodes wake on first reception
  config.max_rounds = 2'000'000;

  // Deterministic: Strong Select (Section 5), O(n^{3/2} sqrt(log n)).
  {
    const ProcessFactory strong_select =
        make_strong_select_factory(net.node_count());
    const SimResult result = run_broadcast(net, strong_select, adversary, config);
    std::printf("strong select : completed=%s rounds=%lld sends=%llu\n",
                result.completed ? "yes" : "no",
                static_cast<long long>(result.completion_round),
                static_cast<unsigned long long>(result.total_sends));
  }

  // Randomized: Harmonic Broadcast (Section 7), O(n log^2 n) w.h.p.
  {
    const ProcessFactory harmonic = make_harmonic_factory(net.node_count());
    const SimResult result = run_broadcast(net, harmonic, adversary, config);
    std::printf("harmonic      : completed=%s rounds=%lld sends=%llu\n",
                result.completed ? "yes" : "no",
                static_cast<long long>(result.completion_round),
                static_cast<unsigned long long>(result.total_sends));
  }
  return 0;
}
