// Scenario: the Theorem 2 bridge network — a 2-broadcastable dual graph on
// which every deterministic algorithm needs linear time.
//
// The network: an (n-1)-clique with the source, one bridge node connected to
// a lone receiver, and a complete unreliable graph G'. A scripted schedule
// (source, then bridge) finishes in 2 rounds; yet the adversary, by choosing
// which process sits on the bridge and when unreliable links fire, forces
// any fixed deterministic algorithm to ~n rounds (Theorem 2) and caps any
// randomized algorithm's success probability at k/(n-2) (Theorem 4).

#include <cstdio>

#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "lowerbound/theorem2.hpp"
#include "lowerbound/theorem4.hpp"

int main() {
  using namespace dualrad;
  const NodeId n = 24;

  std::printf("bridge network, n = %d (2-broadcastable: an oracle schedule "
              "finishes in 2 rounds)\n\n", n);

  // Deterministic algorithms against the Theorem 2 executor.
  const auto rr = lowerbound::run_theorem2(n, make_round_robin_factory(n),
                                           1'000'000);
  const auto ss = lowerbound::run_theorem2(n, make_strong_select_factory(n),
                                           1'000'000);
  std::printf("theorem 2 bound (rounds): >= %lld\n",
              static_cast<long long>(rr.theorem_bound));
  std::printf("  round robin   : worst %lld (bridge id %d)\n",
              static_cast<long long>(rr.worst_rounds), rr.worst_bridge_id);
  std::printf("  strong select : worst %lld (bridge id %d)\n\n",
              static_cast<long long>(ss.worst_rounds), ss.worst_bridge_id);

  std::printf("per-bridge-id rounds for round robin:\n  ");
  for (std::size_t i = 0; i < rr.rounds_by_bridge_id.size(); ++i) {
    std::printf("%lld ", static_cast<long long>(rr.rounds_by_bridge_id[i]));
  }
  std::printf("\n\n");

  // Randomized: uniform gossip vs the Theorem 4 ceiling.
  const std::vector<Round> ks = {1, 5, 9, 13, 17, 21};
  const auto t4 = lowerbound::run_theorem4(n, make_uniform_gossip_factory(n),
                                           ks, 100, 5);
  std::printf("theorem 4: P[success within k] vs ceiling k/(n-2)\n");
  for (const auto& point : t4.points) {
    std::printf("  k=%2lld  measured=%.3f  ceiling=%.3f\n",
                static_cast<long long>(point.k), point.min_success_prob,
                point.bound);
  }
  std::printf("bound respected: %s\n", t4.bound_respected ? "yes" : "NO");
  return 0;
}
